// The DEF grammar, factored as function templates over the lexer type so
// the legacy single-pass parser (lefdef::Lexer) and the chunked streaming
// parser (lefdef::StreamLexer) share one implementation of every
// statement and entity. Equivalence of the two ingest paths (see
// tests/test_stream_parse.cpp) rests on this: both instantiate the exact
// same grammar code, so diagnostics (codes, messages, locations) and the
// populated db objects are byte-identical by construction.
//
// Entity parsers are called with the leading '-' already consumed and
// never consume past the entity's terminating ';' — the invariant the
// streaming chunker relies on to cut COMPONENTS/NETS sections at
// after-';' token boundaries.
#pragma once

#include <string>
#include <utility>

#include "db/design.hpp"
#include "lefdef/lexer.hpp"

namespace pao::lefdef {

template <typename Lex>
void parseRowEntity(Lex& lex, db::Design& design) {
  lex.expect("ROW");
  db::Row row;
  row.name = std::string(lex.next());
  row.site = std::string(lex.next());
  row.origin.x = lex.nextInt();
  row.origin.y = lex.nextInt();
  row.orient = geom::orientFromString(lex.next());
  if (lex.accept("DO")) {
    row.numSites = static_cast<int>(lex.nextInt());
    lex.expect("BY");
    lex.nextInt();  // rows in y (always 1 for std rows)
    lex.expect("STEP");
    row.siteWidth = lex.nextInt();
    lex.nextInt();  // y step
  }
  lex.expect(";");
  design.rows.push_back(std::move(row));
}

template <typename Lex>
void parseTracksEntity(Lex& lex, db::Design& design) {
  lex.expect("TRACKS");
  db::TrackPattern tp;
  const std::string_view axis = lex.next();
  // DEF TRACKS X: vertical tracks (fixed x); TRACKS Y: horizontal tracks.
  tp.axis = axis == "X" ? db::Dir::kVertical : db::Dir::kHorizontal;
  tp.start = lex.nextInt();
  lex.expect("DO");
  tp.count = static_cast<int>(lex.nextInt());
  lex.expect("STEP");
  tp.step = lex.nextInt();
  lex.expect("LAYER");
  const std::string layerName(lex.next());
  const db::Layer* layer = design.tech->findLayer(layerName);
  if (layer == nullptr) {
    throw ParseError(lex.diagPrev(
        "DEF001", "TRACKS references unknown layer '" + layerName + "'"));
  }
  tp.layer = layer->index;
  lex.expect(";");
  design.trackPatterns.push_back(tp);
}

/// One COMPONENTS entity (leading '-' consumed). `resolveMaster` maps a
/// master name to a const db::Master* (null for unknown -> DEF002).
template <typename Lex, typename ResolveMaster>
db::Instance parseComponentEntity(Lex& lex, ResolveMaster&& resolveMaster) {
  db::Instance inst;
  inst.name = std::string(lex.next());
  const std::string masterName(lex.next());
  inst.master = resolveMaster(masterName);
  if (inst.master == nullptr) {
    throw ParseError(lex.diagPrev(
        "DEF002",
        "component references unknown master '" + masterName + "'"));
  }
  while (!lex.accept(";")) {
    if (lex.accept("+")) {
      const std::string_view kw = lex.next();
      if (kw == "PLACED" || kw == "FIXED") {
        lex.expect("(");
        inst.origin.x = lex.nextInt();
        inst.origin.y = lex.nextInt();
        lex.expect(")");
        inst.orient = geom::orientFromString(lex.next());
      }
    } else {
      lex.next();
    }
  }
  return inst;
}

/// One PINS entity (leading '-' consumed).
template <typename Lex>
db::IoPin parsePinEntity(Lex& lex, const db::Tech& tech) {
  db::IoPin pin;
  pin.name = std::string(lex.next());
  geom::Rect shape;
  geom::Point placed;
  while (!lex.accept(";")) {
    if (lex.accept("+")) {
      const std::string_view kw = lex.next();
      if (kw == "LAYER") {
        const db::Layer* layer = tech.findLayer(lex.next());
        pin.layer = layer ? layer->index : -1;
        lex.expect("(");
        const geom::Coord x1 = lex.nextInt();
        const geom::Coord y1 = lex.nextInt();
        lex.expect(")");
        lex.expect("(");
        const geom::Coord x2 = lex.nextInt();
        const geom::Coord y2 = lex.nextInt();
        lex.expect(")");
        shape = {x1, y1, x2, y2};
      } else if (kw == "PLACED" || kw == "FIXED") {
        lex.expect("(");
        placed.x = lex.nextInt();
        placed.y = lex.nextInt();
        lex.expect(")");
        lex.next();  // orient
      }
    } else {
      lex.next();
    }
  }
  pin.rect = shape.translate(placed.x, placed.y);
  return pin;
}

/// One NETS entity (leading '-' consumed). `findInst` maps a component
/// name to its instance index (-1 for unknown -> DEF004); instance pin and
/// IO pin names resolve against `design`, which must already hold the
/// COMPONENTS and PINS sections (in-file-order parses guarantee this).
template <typename Lex, typename FindInst>
db::Net parseNetEntity(Lex& lex, const db::Design& design,
                       FindInst&& findInst) {
  db::Net net;
  net.name = std::string(lex.next());
  while (!lex.accept(";")) {
    if (lex.peek() == "+") {
      // '+' attributes (ROUTED wiring, USE, ...) follow the terms; skip
      // the remainder of this net statement.
      while (!lex.accept(";")) lex.next();
      break;
    }
    if (lex.accept("(")) {
      const std::string a(lex.next());
      db::NetTerm term;
      if (a != "PIN") {
        term.instIdx = findInst(a);
        if (term.instIdx < 0) {
          throw ParseError(lex.diagPrev(
              "DEF004", "net references unknown component '" + a + "'"));
        }
      }
      const std::string b(lex.next());
      if (a == "PIN") {
        for (int i = 0; i < static_cast<int>(design.ioPins.size()); ++i) {
          if (design.ioPins[i].name == b) {
            term.ioPinIdx = i;
            break;
          }
        }
        if (term.ioPinIdx < 0) {
          throw ParseError(lex.diagPrev(
              "DEF003", "net references unknown IO pin '" + b + "'"));
        }
      } else {
        const db::Master& m = *design.instances[term.instIdx].master;
        for (int i = 0; i < static_cast<int>(m.pins.size()); ++i) {
          if (m.pins[i].name == b) {
            term.pinIdx = i;
            break;
          }
        }
        if (term.pinIdx < 0) {
          throw ParseError(lex.diagPrev(
              "DEF005",
              "net references unknown pin '" + b + "' on '" + a + "'"));
        }
      }
      lex.expect(")");
      net.terms.push_back(term);
    } else {
      lex.next();
    }
  }
  return net;
}

/// Top-level statements outside the entity sections: DESIGN, UNITS,
/// DIEAREA, ROW, TRACKS, END, and the skip-unknown default. Returns false
/// when the current token opens a section (COMPONENTS/PINS/NETS) the
/// caller must handle.
template <typename Lex>
bool parseSimpleDefStatement(Lex& lex, db::Design& design, int& dbu) {
  const std::string_view tok = lex.peek();
  if (tok == "COMPONENTS" || tok == "PINS" || tok == "NETS") return false;
  if (tok == "DESIGN") {
    lex.next();
    design.name = std::string(lex.next());
    lex.expect(";");
  } else if (tok == "UNITS") {
    lex.next();
    lex.expect("DISTANCE");
    lex.expect("MICRONS");
    dbu = static_cast<int>(lex.nextInt());
    lex.expect(";");
  } else if (tok == "DIEAREA") {
    lex.next();
    lex.expect("(");
    const geom::Coord x1 = lex.nextInt();
    const geom::Coord y1 = lex.nextInt();
    lex.expect(")");
    lex.expect("(");
    const geom::Coord x2 = lex.nextInt();
    const geom::Coord y2 = lex.nextInt();
    lex.expect(")");
    lex.expect(";");
    design.dieArea = {x1, y1, x2, y2};
  } else if (tok == "ROW") {
    parseRowEntity(lex, design);
  } else if (tok == "TRACKS") {
    parseTracksEntity(lex, design);
  } else if (tok == "END") {
    lex.next();
    if (!lex.done()) lex.next();
  } else {
    lex.skipStatement();
  }
  return true;
}

}  // namespace pao::lefdef
