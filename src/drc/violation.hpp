// DRC violation record shared by all checks.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "geom/geom.hpp"

namespace pao::drc {

enum class RuleKind : std::uint8_t {
  kMetalSpacing,
  kMinStep,
  kEndOfLine,
  kMinArea,
  kCutSpacing,
  kShort,
  kOffGrid,
};

std::string_view toString(RuleKind k);

struct Violation {
  RuleKind kind = RuleKind::kMetalSpacing;
  int layer = -1;
  geom::Rect bbox;  ///< marker region
  /// Nets involved (-1 for obstructions / blockages).
  int netA = -1;
  int netB = -1;

  std::string describe() const;

  friend bool operator==(const Violation&, const Violation&) = default;
};

/// Canonical violation ordering — (layer, kind, bbox, nets) — used to merge
/// per-shard results of the parallel batch check into a schedule-independent
/// sequence. Serial checkAll sorts with the same key so serial and parallel
/// runs return identical vectors, not just identical sets.
bool violationLess(const Violation& a, const Violation& b);

void sortViolations(std::vector<Violation>& violations);

}  // namespace pao::drc
