// DRC violation record shared by all checks.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "geom/geom.hpp"

namespace pao::drc {

enum class RuleKind : std::uint8_t {
  kMetalSpacing,
  kMinStep,
  kEndOfLine,
  kMinArea,
  kCutSpacing,
  kShort,
  kOffGrid,
};

std::string_view toString(RuleKind k);

struct Violation {
  RuleKind kind = RuleKind::kMetalSpacing;
  int layer = -1;
  geom::Rect bbox;  ///< marker region
  /// Nets involved (-1 for obstructions / blockages).
  int netA = -1;
  int netB = -1;

  std::string describe() const;
};

}  // namespace pao::drc
