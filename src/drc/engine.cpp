#include "drc/engine.hpp"

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <utility>

#include "geom/polygon.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/executor.hpp"
#include "util/jobs.hpp"

namespace pao::drc {

using geom::Coord;
using geom::Point;
using geom::Rect;

DrcEngine::DrcEngine(const db::Tech& tech)
    : tech_(&tech), region_(static_cast<int>(tech.layers().size())) {}

std::vector<Shape> DrcEngine::viaShapes(const db::ViaDef& via, Point p,
                                        int net, bool fixed) const {
  std::vector<Shape> out;
  out.push_back({via.botEncAt(p), via.botLayer, net, ShapeKind::kVia, fixed});
  out.push_back({via.cutAt(p), via.cutLayer, net, ShapeKind::kVia, fixed});
  out.push_back({via.topEncAt(p), via.topLayer, net, ShapeKind::kVia, fixed});
  return out;
}

std::vector<geom::Rect> DrcEngine::mergedComponent(
    const Rect& seed, int layer, int net, std::span<const Shape> extra) const {
  std::vector<Rect> comp{seed};
  std::deque<Rect> frontier{seed};
  const auto absorbed = [&](const Rect& r) {
    return std::find(comp.begin(), comp.end(), r) != comp.end();
  };
  // Bounded flood fill over touching same-net shapes. The bound keeps the
  // incremental check local; standard-cell pins have few rects.
  constexpr std::size_t kMaxComponent = 64;
  while (!frontier.empty() && comp.size() < kMaxComponent) {
    const Rect cur = frontier.front();
    frontier.pop_front();
    queryWithExtra(layer, cur, extra, [&](const Shape& s) {
      if (s.net != net || comp.size() >= kMaxComponent) return;
      if (!s.rect.intersects(cur) || absorbed(s.rect)) return;
      comp.push_back(s.rect);
      frontier.push_back(s.rect);
    });
  }
  return comp;
}

std::vector<Violation> DrcEngine::checkVia(const db::ViaDef& via, Point p,
                                           int net,
                                           std::span<const Shape> extra) const {
  std::vector<Violation> out;

  const auto checkMetalRect = [&](const Rect& enc, int layerIdx) {
    const db::Layer& layer = tech_->layer(layerIdx);
    const Shape cand{enc, layerIdx, net, ShapeKind::kVia, false};
    const Coord halo = maxSpacingHalo(layer);

    // Spacing / shorts against conflicting context shapes.
    queryWithExtra(layerIdx, enc.bloat(halo), extra, [&](const Shape& s) {
      if (auto v = checkSpacingPair(layer, cand, s)) out.push_back(*v);
    });

    // Min step and EOL over the merged same-net component. Only violations
    // in the via's vicinity are attributed to it — a long pin bar may carry
    // pre-existing artifacts far away that the via did not cause.
    const Coord window =
        halo + (layer.minStep ? layer.minStep->minStepLength : 0);
    const Rect vicinity = enc.bloat(window);
    const std::vector<Rect> comp = mergedComponent(enc, layerIdx, net, extra);
    for (Violation v : checkMinStep(layer, comp)) {
      if (v.bbox.intersects(vicinity)) out.push_back(v);
    }
    if (layer.eol) {
      // Build a local context holding nearby conflicting shapes plus extras.
      Rect compBox;
      for (const Rect& r : comp) compBox = compBox.merge(r);
      RegionQuery local(static_cast<int>(tech_->layers().size()));
      queryWithExtra(layerIdx, compBox.bloat(halo), extra,
                     [&](const Shape& s) {
                       if (s.net != net || s.net == Shape::kObsNet) {
                         local.add(s);
                       }
                     });
      for (Violation v : checkEol(layer, comp, net, local)) {
        if (v.bbox.intersects(vicinity)) out.push_back(v);
      }
    }
  };

  checkMetalRect(via.botEncAt(p), via.botLayer);
  checkMetalRect(via.topEncAt(p), via.topLayer);

  // Cut spacing.
  const db::Layer& cutLayer = tech_->layer(via.cutLayer);
  const Shape cutCand{via.cutAt(p), via.cutLayer, net, ShapeKind::kVia, false};
  queryWithExtra(via.cutLayer, cutCand.rect.bloat(cutLayer.cutSpacing), extra,
                 [&](const Shape& s) {
                   if (auto v = checkCutSpacingPair(cutLayer, cutCand, s)) {
                     out.push_back(*v);
                   }
                 });
  return out;
}

std::vector<Violation> DrcEngine::checkWire(const Rect& r, int layerIdx,
                                            int net,
                                            std::span<const Shape> extra) const {
  std::vector<Violation> out;
  const db::Layer& layer = tech_->layer(layerIdx);
  const Shape cand{r, layerIdx, net, ShapeKind::kWire, false};
  queryWithExtra(layerIdx, r.bloat(maxSpacingHalo(layer)), extra,
                 [&](const Shape& s) {
                   if (auto v = checkSpacingPair(layer, cand, s)) {
                     out.push_back(*v);
                   }
                 });
  return out;
}

std::vector<Violation> DrcEngine::checkViaPair(const db::ViaDef& viaA,
                                               Point pa, int netA,
                                               const db::ViaDef& viaB,
                                               Point pb, int netB) const {
  const std::vector<Shape> aShapes = viaShapes(viaA, pa, netA);
  return checkVia(viaB, pb, netB, aShapes);
}

std::vector<Violation> DrcEngine::checkAll(int numThreads) const {
  PAO_TRACE_SCOPE("drc.check_all");
  const int numLayers = static_cast<int>(tech_->layers().size());

  // The batch check is sharded into independent tasks: contiguous shape
  // ranges for the pairwise loops and net ranges for the merged-component
  // rules, all built over per-layer indices that are only read concurrently.
  // The merged output is canonically sorted, so the shard layout (and hence
  // the thread count) never changes the returned vector.
  std::vector<std::function<void(std::vector<Violation>&)>> tasks;
  std::deque<geom::GridIndex<std::size_t>> indices;
  std::deque<std::vector<std::pair<int, std::vector<const Shape*>>>> netLists;

  const auto rangeChunks = [&](std::size_t count,
                               const std::function<void(
                                   std::size_t, std::size_t,
                                   std::vector<Violation>&)>& body) {
    // Fixed shard target, independent of the thread count, so the task
    // count (and with it pao.jobs.executed) is identical at any --threads.
    // 64 shards per range keeps plenty of steal granularity for the worker
    // counts this engine sees without drowning the graph in tiny jobs.
    static constexpr std::size_t kShardTarget = 64;
    const std::size_t chunk =
        std::max<std::size_t>(1, (count + kShardTarget - 1) / kShardTarget);
    for (std::size_t lo = 0; lo < count; lo += chunk) {
      const std::size_t hi = std::min(count, lo + chunk);
      tasks.push_back([body, lo, hi](std::vector<Violation>& out) {
        body(lo, hi, out);
      });
    }
  };

  for (int li = 0; li < numLayers; ++li) {
    const db::Layer& layer = tech_->layer(li);
    const std::vector<Shape>& shapes = region_.shapesOnLayer(li);

    if (layer.type == db::LayerType::kCut) {
      geom::GridIndex<std::size_t>& idx = indices.emplace_back();
      for (std::size_t i = 0; i < shapes.size(); ++i) {
        idx.insert(shapes[i].rect, i);
      }
      rangeChunks(shapes.size(), [&layer, &shapes, &idx](
                                     std::size_t lo, std::size_t hi,
                                     std::vector<Violation>& out) {
        for (std::size_t i = lo; i < hi; ++i) {
          idx.query(shapes[i].rect.bloat(layer.cutSpacing),
                    [&](const Rect&, std::size_t j) {
                      if (j <= i) return;
                      if (shapes[i].fixed && shapes[j].fixed) return;
                      if (auto v = checkCutSpacingPair(layer, shapes[i],
                                                       shapes[j])) {
                        out.push_back(*v);
                      }
                    });
        }
      });
      continue;
    }
    if (layer.type != db::LayerType::kRouting) continue;

    // Pairwise spacing (skip fixed-fixed: library geometry is self-clean).
    const Coord halo = maxSpacingHalo(layer);
    geom::GridIndex<std::size_t>& idx = indices.emplace_back();
    for (std::size_t i = 0; i < shapes.size(); ++i) {
      idx.insert(shapes[i].rect, i);
    }
    rangeChunks(shapes.size(), [&layer, &shapes, &idx, halo](
                                   std::size_t lo, std::size_t hi,
                                   std::vector<Violation>& out) {
      for (std::size_t i = lo; i < hi; ++i) {
        idx.query(shapes[i].rect.bloat(halo),
                  [&](const Rect&, std::size_t j) {
                    if (j <= i) return;
                    if (shapes[i].fixed && shapes[j].fixed) return;
                    if (auto v = checkSpacingPair(layer, shapes[i],
                                                  shapes[j])) {
                      out.push_back(*v);
                    }
                  });
      }
    });

    // Per-net merged components: min step, min area, EOL. Components made
    // only of fixed shapes are skipped (library pins are self-clean), and
    // min area exempts components anchored to a pin shape. Nets are
    // independent, so they shard by net range.
    std::map<int, std::vector<const Shape*>> byNet;
    for (const Shape& s : shapes) {
      if (s.net == Shape::kObsNet) continue;
      byNet[s.net].push_back(&s);
    }
    auto& nets = netLists.emplace_back(byNet.begin(), byNet.end());
    rangeChunks(nets.size(), [this, &layer, &nets](
                                 std::size_t lo, std::size_t hi,
                                 std::vector<Violation>& out) {
      for (std::size_t ni = lo; ni < hi; ++ni) {
        const auto& [net, netShapes] = nets[ni];
        // Union-find over this net's shapes by geometric adjacency.
        const std::size_t n = netShapes.size();
        std::vector<std::size_t> parent(n);
        for (std::size_t i = 0; i < n; ++i) parent[i] = i;
        const auto find = [&](std::size_t i) {
          while (parent[i] != i) {
            parent[i] = parent[parent[i]];
            i = parent[i];
          }
          return i;
        };
        for (std::size_t i = 0; i < n; ++i) {
          for (std::size_t j = i + 1; j < n; ++j) {
            if (netShapes[i]->rect.intersects(netShapes[j]->rect)) {
              parent[find(i)] = find(j);
            }
          }
        }
        std::map<std::size_t, std::vector<const Shape*>> comps;
        for (std::size_t i = 0; i < n; ++i) {
          comps[find(i)].push_back(netShapes[i]);
        }

        for (const auto& [root, members] : comps) {
          bool anyRouted = false;
          bool anyFixed = false;
          std::vector<Rect> comp;
          comp.reserve(members.size());
          for (const Shape* s : members) {
            comp.push_back(s->rect);
            anyRouted = anyRouted || !s->fixed;
            anyFixed = anyFixed || s->fixed;
          }
          if (!anyRouted) continue;
          for (Violation v : checkMinStep(layer, comp)) {
            v.netA = net;
            out.push_back(v);
          }
          if (layer.minArea > 0 && !anyFixed) {
            if (auto v = checkMinArea(layer, comp, net)) out.push_back(*v);
          }
          for (Violation v : checkEol(layer, comp, net, region_)) {
            out.push_back(v);
          }
        }
      }
    });
  }

  // Each shard is a node of a (single-layer) job graph: callers that are
  // themselves job-graph nodes degrade to serial via the nested-run rule,
  // and shard slot writes keep the merge below schedule-invariant.
  std::vector<std::vector<Violation>> shardOut(tasks.size());
  util::JobGraph graph;
  graph.addJobRange(tasks.size(),
                    [&](std::size_t t) { tasks[t](shardOut[t]); });
  graph.run(numThreads);

  std::vector<Violation> out;
  for (std::vector<Violation>& shard : shardOut) {
    out.insert(out.end(), shard.begin(), shard.end());
  }
  sortViolations(out);
  // Post-merge totals: shard layout never changes the sorted result, so
  // both counters are thread-count-invariant.
  PAO_COUNTER_INC("pao.drc.check_all_runs");
  PAO_COUNTER_ADD("pao.drc.violations_found", out.size());
  return out;
}

}  // namespace pao::drc
