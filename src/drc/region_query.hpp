// Per-layer spatial store of layout shapes with net/ownership identity, the
// context against which candidate shapes (via enclosures, wire segments) are
// DRC-checked.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/geom.hpp"
#include "geom/grid_index.hpp"

namespace pao::drc {

enum class ShapeKind : std::uint8_t { kPin, kObstruction, kWire, kVia, kIoPin };

/// A shape in the region query. `net` is a caller-defined identity: shapes
/// with equal non-negative `net` are electrically the same and never conflict
/// with each other; `net == kObsNet` shapes (obstructions) conflict with
/// everything routed.
struct Shape {
  geom::Rect rect;
  int layer = -1;
  int net = -1;
  ShapeKind kind = ShapeKind::kPin;
  bool fixed = true;  ///< library/pin geometry (assumed clean against itself)

  static constexpr int kObsNet = -1;
};

/// True when spacing-style rules apply between the two shapes: different
/// nets, or either side is an obstruction.
inline bool conflicting(const Shape& a, const Shape& b) {
  if (a.net == Shape::kObsNet || b.net == Shape::kObsNet) return true;
  return a.net != b.net;
}

class RegionQuery {
 public:
  explicit RegionQuery(int numLayers, geom::Coord binSize = 4096);

  void add(const Shape& s);
  void clear();

  int numLayers() const { return static_cast<int>(layers_.size()); }
  std::size_t size() const { return count_; }

  /// Invokes fn(shape) for every stored shape on `layer` intersecting `box`.
  template <typename Fn>
  void query(int layer, const geom::Rect& box, Fn&& fn) const {
    if (layer < 0 || layer >= numLayers()) return;
    layers_[layer].query(
        box, [&](const geom::Rect&, const Shape& s) { fn(s); });
  }

  std::vector<Shape> queryShapes(int layer, const geom::Rect& box) const;

  /// All shapes on `layer` (unordered).
  const std::vector<Shape>& shapesOnLayer(int layer) const {
    return byLayer_.at(layer);
  }

 private:
  std::vector<geom::GridIndex<Shape>> layers_;
  std::vector<std::vector<Shape>> byLayer_;
  std::size_t count_ = 0;
};

}  // namespace pao::drc
