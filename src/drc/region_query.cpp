#include "drc/region_query.hpp"

namespace pao::drc {

RegionQuery::RegionQuery(int numLayers, geom::Coord binSize) {
  layers_.reserve(numLayers);
  for (int i = 0; i < numLayers; ++i) layers_.emplace_back(binSize);
  byLayer_.resize(numLayers);
}

void RegionQuery::add(const Shape& s) {
  if (s.layer < 0 || s.layer >= numLayers() || s.rect.empty()) return;
  layers_[s.layer].insert(s.rect, s);
  byLayer_[s.layer].push_back(s);
  ++count_;
}

void RegionQuery::clear() {
  for (auto& g : layers_) g.clear();
  for (auto& v : byLayer_) v.clear();
  count_ = 0;
}

std::vector<Shape> RegionQuery::queryShapes(int layer,
                                            const geom::Rect& box) const {
  std::vector<Shape> out;
  query(layer, box, [&](const Shape& s) { out.push_back(s); });
  return out;
}

}  // namespace pao::drc
