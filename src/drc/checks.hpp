// Individual design-rule checks. Each check is a pure function over shapes
// (plus the layer's rules); the DrcEngine composes them with region queries.
#pragma once

#include <optional>
#include <vector>

#include "db/tech.hpp"
#include "drc/region_query.hpp"
#include "drc/violation.hpp"
#include "geom/polygon.hpp"

namespace pao::drc {

/// Metal-to-metal spacing between two conflicting shapes on `layer`.
/// PRL > 0 pairs use the spacing-table requirement against the axis gap;
/// corner-to-corner pairs (PRL <= 0) use Euclidean distance. Overlapping
/// conflicting shapes are shorts.
std::optional<Violation> checkSpacingPair(const db::Layer& layer,
                                          const Shape& a, const Shape& b);

/// MINSTEP over one merged same-net component: walks every boundary ring and
/// flags runs of more than `maxEdges` consecutive edges shorter than
/// `minStepLength` (paper Fig. 3: a via enclosure protruding from a pin shape
/// creates such steps).
std::vector<Violation> checkMinStep(const db::Layer& layer,
                                    const std::vector<geom::Rect>& component);

/// End-of-line spacing for one merged same-net component: boundary edges
/// shorter than `eolWidth` that are convex at both ends require `space`
/// clearance (extended sideways by `within`) from conflicting shapes.
std::vector<Violation> checkEol(const db::Layer& layer,
                                const std::vector<geom::Rect>& component,
                                int selfNet, const RegionQuery& context);

/// MINAREA over one merged same-net component.
std::optional<Violation> checkMinArea(const db::Layer& layer,
                                      const std::vector<geom::Rect>& component,
                                      int net);

/// Cut-to-cut spacing between two cut shapes of different vias.
std::optional<Violation> checkCutSpacingPair(const db::Layer& cutLayer,
                                             const Shape& a, const Shape& b);

/// Largest spacing any rule on `layer` could require — the query halo.
geom::Coord maxSpacingHalo(const db::Layer& layer);

}  // namespace pao::drc
