#include "drc/violation.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>

namespace pao::drc {

std::string_view toString(RuleKind k) {
  switch (k) {
    case RuleKind::kMetalSpacing: return "MetalSpacing";
    case RuleKind::kMinStep: return "MinStep";
    case RuleKind::kEndOfLine: return "EndOfLine";
    case RuleKind::kMinArea: return "MinArea";
    case RuleKind::kCutSpacing: return "CutSpacing";
    case RuleKind::kShort: return "Short";
    case RuleKind::kOffGrid: return "OffGrid";
  }
  return "Unknown";
}

std::string Violation::describe() const {
  std::ostringstream os;
  os << toString(kind) << " layer=" << layer << " at " << bbox
     << " nets=(" << netA << "," << netB << ")";
  return os.str();
}

bool violationLess(const Violation& a, const Violation& b) {
  const auto key = [](const Violation& v) {
    return std::make_tuple(v.layer, static_cast<int>(v.kind), v.bbox.xlo,
                           v.bbox.ylo, v.bbox.xhi, v.bbox.yhi, v.netA,
                           v.netB);
  };
  return key(a) < key(b);
}

void sortViolations(std::vector<Violation>& violations) {
  std::sort(violations.begin(), violations.end(), violationLess);
}

}  // namespace pao::drc
