#include "drc/violation.hpp"

#include <sstream>

namespace pao::drc {

std::string_view toString(RuleKind k) {
  switch (k) {
    case RuleKind::kMetalSpacing: return "MetalSpacing";
    case RuleKind::kMinStep: return "MinStep";
    case RuleKind::kEndOfLine: return "EndOfLine";
    case RuleKind::kMinArea: return "MinArea";
    case RuleKind::kCutSpacing: return "CutSpacing";
    case RuleKind::kShort: return "Short";
    case RuleKind::kOffGrid: return "OffGrid";
  }
  return "Unknown";
}

std::string Violation::describe() const {
  std::ostringstream os;
  os << toString(kind) << " layer=" << layer << " at " << bbox
     << " nets=(" << netA << "," << netB << ")";
  return os.str();
}

}  // namespace pao::drc
