#include "drc/checks.hpp"

#include <algorithm>

namespace pao::drc {

using geom::BoundaryEdge;
using geom::BoundaryRing;
using geom::Coord;
using geom::Point;
using geom::Rect;

std::optional<Violation> checkSpacingPair(const db::Layer& layer,
                                          const Shape& a, const Shape& b) {
  if (!conflicting(a, b)) return std::nullopt;
  if (a.rect.overlaps(b.rect)) {
    return Violation{RuleKind::kShort, layer.index,
                     a.rect.intersect(b.rect), a.net, b.net};
  }
  const Coord runLength = geom::prl(a.rect, b.rect);
  const Coord width = std::max(a.rect.minDim(), b.rect.minDim());
  const Coord req = layer.spacing(width, runLength);
  if (req <= 0) return std::nullopt;

  bool violated = false;
  if (runLength > 0) {
    violated = geom::maxAxisGap(a.rect, b.rect) < req;
  } else {
    violated = geom::distSquared(a.rect, b.rect) < req * req;
  }
  if (!violated) return std::nullopt;
  const Rect marker = Rect(a.rect.center(), b.rect.center());
  return Violation{RuleKind::kMetalSpacing, layer.index, marker, a.net, b.net};
}

std::vector<Violation> checkMinStep(const db::Layer& layer,
                                    const std::vector<Rect>& component) {
  std::vector<Violation> out;
  if (!layer.minStep) return out;
  const Coord minLen = layer.minStep->minStepLength;
  const int maxEdges = layer.minStep->maxEdges;

  for (const BoundaryRing& ring : geom::unionBoundary(component)) {
    const int n = static_cast<int>(ring.size());
    if (n == 0) continue;
    // Rotate the scan to start right after a long edge so runs never wrap.
    int start = -1;
    for (int i = 0; i < n; ++i) {
      if (ring[i].length() >= minLen) {
        start = i;
        break;
      }
    }
    if (start < 0) {
      // Every edge is a step. Flag when the ring exceeds the allowed count.
      if (n > maxEdges) {
        Rect bbox;
        for (const BoundaryEdge& e : ring) {
          bbox = bbox.merge(Rect(e.from, e.to));
        }
        out.push_back(
            {RuleKind::kMinStep, layer.index, bbox, Shape::kObsNet, -1});
      }
      continue;
    }
    int run = 0;
    Rect runBox;
    for (int k = 1; k <= n; ++k) {
      const BoundaryEdge& e = ring[(start + k) % n];
      if (e.length() < minLen) {
        ++run;
        runBox = runBox.merge(Rect(e.from, e.to));
        if (run == maxEdges + 1) {  // report once per run
          out.push_back(
              {RuleKind::kMinStep, layer.index, runBox, Shape::kObsNet, -1});
        }
      } else {
        run = 0;
        runBox = Rect();
      }
    }
  }
  return out;
}

namespace {

/// Left-turn test for consecutive directed edges (rings are oriented with the
/// interior on the left, so a left turn is a convex corner).
bool leftTurn(const BoundaryEdge& a, const BoundaryEdge& b) {
  const Point d1{a.to.x - a.from.x, a.to.y - a.from.y};
  const Point d2{b.to.x - b.from.x, b.to.y - b.from.y};
  return d1.x * d2.y - d1.y * d2.x > 0;
}

/// The clearance region beyond an EOL edge: depth `space` outward (to the
/// right of the edge direction), extended `within` past both edge endpoints.
Rect eolRegion(const BoundaryEdge& e, Coord space, Coord within) {
  if (e.horizontal()) {
    const Coord x1 = std::min(e.from.x, e.to.x) - within;
    const Coord x2 = std::max(e.from.x, e.to.x) + within;
    // Edge direction +x has interior above; outward (right side) is -y.
    if (e.to.x > e.from.x) return {x1, e.from.y - space, x2, e.from.y};
    return {x1, e.from.y, x2, e.from.y + space};
  }
  const Coord y1 = std::min(e.from.y, e.to.y) - within;
  const Coord y2 = std::max(e.from.y, e.to.y) + within;
  // Edge direction +y has interior on the left (-x side); outward is +x.
  if (e.to.y > e.from.y) return {e.from.x, y1, e.from.x + space, y2};
  return {e.from.x - space, y1, e.from.x, y2};
}

}  // namespace

std::vector<Violation> checkEol(const db::Layer& layer,
                                const std::vector<Rect>& component,
                                int selfNet, const RegionQuery& context) {
  std::vector<Violation> out;
  if (!layer.eol) return out;
  const db::EolRule rule = *layer.eol;

  for (const BoundaryRing& ring : geom::unionBoundary(component)) {
    const int n = static_cast<int>(ring.size());
    for (int i = 0; i < n; ++i) {
      const BoundaryEdge& e = ring[i];
      if (e.length() >= rule.eolWidth) continue;
      const BoundaryEdge& prev = ring[(i + n - 1) % n];
      const BoundaryEdge& next = ring[(i + 1) % n];
      if (!leftTurn(prev, e) || !leftTurn(e, next)) continue;  // not a line end
      const Rect region = eolRegion(e, rule.space, rule.within);
      bool hit = false;
      context.query(layer.index, region, [&](const Shape& s) {
        if (hit) return;
        if (s.net == selfNet && s.net != Shape::kObsNet) return;
        if (s.rect.overlaps(region)) hit = true;
      });
      if (hit) {
        out.push_back({RuleKind::kEndOfLine, layer.index, region, selfNet,
                       Shape::kObsNet});
      }
    }
  }
  return out;
}

std::optional<Violation> checkMinArea(const db::Layer& layer,
                                      const std::vector<Rect>& component,
                                      int net) {
  if (layer.minArea <= 0) return std::nullopt;
  if (geom::unionArea(component) >= layer.minArea) return std::nullopt;
  Rect bbox;
  for (const Rect& r : component) bbox = bbox.merge(r);
  return Violation{RuleKind::kMinArea, layer.index, bbox, net, net};
}

std::optional<Violation> checkCutSpacingPair(const db::Layer& cutLayer,
                                             const Shape& a, const Shape& b) {
  if (a.rect == b.rect && a.net == b.net) return std::nullopt;
  const Coord req = cutLayer.cutSpacing;
  if (req <= 0) return std::nullopt;
  if (a.rect.overlaps(b.rect)) {
    if (a.net == b.net) return std::nullopt;  // stacked same-net cut
    return Violation{RuleKind::kShort, cutLayer.index,
                     a.rect.intersect(b.rect), a.net, b.net};
  }
  const bool corner = geom::prl(a.rect, b.rect) <= 0;
  const bool violated = corner ? geom::distSquared(a.rect, b.rect) < req * req
                               : geom::maxAxisGap(a.rect, b.rect) < req;
  if (!violated) return std::nullopt;
  return Violation{RuleKind::kCutSpacing, cutLayer.index,
                   Rect(a.rect.center(), b.rect.center()), a.net, b.net};
}

Coord maxSpacingHalo(const db::Layer& layer) {
  Coord halo = layer.cutSpacing;
  for (const db::SpacingTableEntry& e : layer.spacingTable) {
    halo = std::max(halo, e.spacing);
  }
  if (layer.eol) {
    halo = std::max(halo, layer.eol->space + layer.eol->within);
  }
  return halo;
}

}  // namespace pao::drc
