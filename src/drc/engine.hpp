// The DRC engine: owns a region-query context of fixed/routed shapes and
// answers two kinds of questions:
//   1. incremental — "would dropping this via / wire here be DRC-clean?"
//      (the validity oracle of Algorithm 1 and the isDRCClean predicate of
//      Algorithm 3), and
//   2. batch — "how many violations does the current layout have?"
//      (the #DRC metric of Experiment 3).
#pragma once

#include <span>
#include <vector>

#include "db/tech.hpp"
#include "drc/checks.hpp"
#include "drc/region_query.hpp"

namespace pao::drc {

class DrcEngine {
 public:
  explicit DrcEngine(const db::Tech& tech);

  RegionQuery& region() { return region_; }
  const RegionQuery& region() const { return region_; }
  const db::Tech& tech() const { return *tech_; }

  /// Shapes a via instance contributes (bottom enclosure, cut, top
  /// enclosure), for use as `extra` context in pairwise checks.
  std::vector<Shape> viaShapes(const db::ViaDef& via, geom::Point p, int net,
                               bool fixed = false) const;

  /// All violations caused by dropping `via` at `p` connecting `net`.
  /// `extra` shapes are treated as additional context (e.g. a neighboring
  /// candidate via when evaluating DP edge compatibility).
  std::vector<Violation> checkVia(const db::ViaDef& via, geom::Point p,
                                  int net,
                                  std::span<const Shape> extra = {}) const;
  bool isViaClean(const db::ViaDef& via, geom::Point p, int net,
                  std::span<const Shape> extra = {}) const {
    return checkVia(via, p, net, extra).empty();
  }

  /// Spacing/short violations caused by a candidate wire rect.
  std::vector<Violation> checkWire(const geom::Rect& r, int layer, int net,
                                   std::span<const Shape> extra = {}) const;

  /// Violations between two candidate vias placed together (each assumed
  /// individually clean): checks B against the context plus A's shapes.
  std::vector<Violation> checkViaPair(const db::ViaDef& viaA, geom::Point pa,
                                      int netA, const db::ViaDef& viaB,
                                      geom::Point pb, int netB) const;

  /// Full-layout batch check over everything in the region query. Pairs of
  /// fixed shapes are skipped (library geometry is assumed self-clean).
  /// With numThreads != 1 the work is sharded by layer-local shape ranges
  /// and per-net components over the executor; the result is canonically
  /// sorted (violationLess) in every mode, so thread count never changes
  /// the returned vector.
  std::vector<Violation> checkAll(int numThreads = 1) const;

 private:
  /// Same-net shapes on `layer` connected (transitively touching) to `seed`,
  /// including `seed` itself — the merged component for min-step/EOL/area.
  std::vector<geom::Rect> mergedComponent(const geom::Rect& seed, int layer,
                                          int net,
                                          std::span<const Shape> extra) const;

  template <typename Fn>
  void queryWithExtra(int layer, const geom::Rect& box,
                      std::span<const Shape> extra, Fn&& fn) const {
    region_.query(layer, box, fn);
    for (const Shape& s : extra) {
      if (s.layer == layer && s.rect.intersects(box)) fn(s);
    }
  }

  const db::Tech* tech_;
  RegionQuery region_;
};

}  // namespace pao::drc
