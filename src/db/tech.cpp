#include "db/tech.hpp"

#include <algorithm>

namespace pao::db {

Coord Layer::spacing(Coord w, Coord runLength) const {
  if (spacingTable.empty()) return 0;
  // Entries are sorted by (width, prl); pick the largest spacing among rows
  // whose thresholds are met. LEF semantics: a row applies when the wider
  // shape's width > row.width and PRL > row.prl (the first row has width 0 and
  // prl 0 thresholds meaning "always").
  Coord s = spacingTable.front().spacing;
  for (const SpacingTableEntry& e : spacingTable) {
    if (w > e.width && runLength > e.prl) s = std::max(s, e.spacing);
  }
  return s;
}

Coord Layer::minSpacing() const {
  return spacingTable.empty() ? 0 : spacingTable.front().spacing;
}

Layer& Tech::addLayer(std::string layerName, LayerType type) {
  Layer& l = layers_.emplace_back();
  l.name = std::move(layerName);
  l.type = type;
  l.index = static_cast<int>(layers_.size()) - 1;
  layerByName_[l.name] = l.index;
  return l;
}

ViaDef& Tech::addViaDef(std::string viaName) {
  ViaDef& v = viaDefs_.emplace_back();
  v.name = std::move(viaName);
  v.index = static_cast<int>(viaDefs_.size()) - 1;
  viaByName_[v.name] = v.index;
  return v;
}

const Layer* Tech::findLayer(std::string_view layerName) const {
  const auto it = layerByName_.find(std::string(layerName));
  return it == layerByName_.end() ? nullptr : &layers_[it->second];
}

const ViaDef* Tech::findViaDef(std::string_view viaName) const {
  const auto it = viaByName_.find(std::string(viaName));
  return it == viaByName_.end() ? nullptr : &viaDefs_[it->second];
}

std::vector<const ViaDef*> Tech::viaDefsFromLayer(int botLayer) const {
  std::vector<const ViaDef*> out;
  for (const ViaDef& v : viaDefs_) {
    if (v.botLayer == botLayer) out.push_back(&v);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const ViaDef* a, const ViaDef* b) {
                     return a->isDefault > b->isDefault;
                   });
  return out;
}

int Tech::numRoutingLayers() const {
  int n = 0;
  for (const Layer& l : layers_) {
    if (l.type == LayerType::kRouting) ++n;
  }
  return n;
}

int Tech::routingLayerAbove(int layerIdx) const {
  for (int i = layerIdx + 1; i < static_cast<int>(layers_.size()); ++i) {
    if (layers_[i].type == LayerType::kRouting) return i;
  }
  return -1;
}

}  // namespace pao::db
