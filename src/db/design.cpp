#include "db/design.hpp"

namespace pao::db {

bool TrackPattern::onTrack(Coord v) const {
  if (step <= 0 || count <= 0) return false;
  if (v < start) return false;
  const Coord d = v - start;
  return d % step == 0 && d / step < count;
}

std::vector<Coord> TrackPattern::coordsIn(Coord lo, Coord hi) const {
  std::vector<Coord> out;
  if (step <= 0 || count <= 0) return out;
  // First track index at or above lo.
  Coord i = lo <= start ? 0 : (lo - start + step - 1) / step;
  for (; i < count; ++i) {
    const Coord c = start + i * step;
    if (c > hi) break;
    out.push_back(c);
  }
  return out;
}

int Design::findInstance(std::string_view instName) const {
  const auto it = instByName_.find(std::string(instName));
  return it == instByName_.end() ? -1 : it->second;
}

std::vector<const TrackPattern*> Design::tracks(int layer, Dir axis) const {
  std::vector<const TrackPattern*> out;
  for (const TrackPattern& tp : trackPatterns) {
    if (tp.layer == layer && tp.axis == axis) out.push_back(&tp);
  }
  return out;
}

std::size_t Design::numNetInstTerms() const {
  std::size_t n = 0;
  for (const Net& net : nets) {
    for (const NetTerm& t : net.terms) {
      if (!t.isIo()) ++n;
    }
  }
  return n;
}

void Design::buildInstanceIndex() {
  instByName_.clear();
  for (int i = 0; i < static_cast<int>(instances.size()); ++i) {
    instByName_[instances[i].name] = i;
  }
}

void Design::moveInstance(int idx, geom::Point newOrigin) {
  instances.at(idx).origin = newOrigin;
  ++revision_;
}

void Design::setInstanceOrient(int idx, geom::Orient orient) {
  instances.at(idx).orient = orient;
  ++revision_;
}

int Design::addInstance(Instance inst) {
  const int idx = static_cast<int>(instances.size());
  instByName_[inst.name] = idx;
  instances.push_back(std::move(inst));
  ++revision_;
  return idx;
}

void Design::removeInstance(int idx) {
  instances.erase(instances.begin() + idx);
  for (Net& net : nets) {
    std::erase_if(net.terms, [idx](const NetTerm& t) {
      return !t.isIo() && t.instIdx == idx;
    });
    for (NetTerm& t : net.terms) {
      if (t.instIdx > idx) --t.instIdx;
    }
  }
  buildInstanceIndex();
  ++revision_;
}

}  // namespace pao::db
