// Cell library model: masters with pins (rectilinear shapes on routing
// layers) and obstructions. This is the LEF MACRO half of the database.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "geom/geom.hpp"

namespace pao::db {

enum class PinUse : std::uint8_t { kSignal, kPower, kGround, kClock };
enum class MasterClass : std::uint8_t { kCore, kBlock, kFiller, kEndcap };

struct PinShape {
  int layer = -1;  ///< routing layer index into Tech::layers()
  geom::Rect rect; ///< in master coordinates (bbox lower-left at origin)
};

struct Pin {
  std::string name;
  PinUse use = PinUse::kSignal;
  std::vector<PinShape> shapes;

  /// Bounding box over all shapes (any layer).
  geom::Rect bbox() const;
  /// Shapes restricted to one layer.
  std::vector<geom::Rect> shapesOnLayer(int layer) const;
};

struct Obstruction {
  int layer = -1;
  geom::Rect rect;
};

class Master {
 public:
  std::string name;
  MasterClass cls = MasterClass::kCore;
  geom::Coord width = 0;
  geom::Coord height = 0;
  std::vector<Pin> pins;
  std::vector<Obstruction> obstructions;

  geom::Point size() const { return {width, height}; }
  geom::Rect bbox() const { return {0, 0, width, height}; }
  const Pin* findPin(std::string_view pinName) const;
  /// Signal/clock pins only — the ones detailed routing must access.
  std::vector<int> signalPinIndices() const;
};

class Library {
 public:
  Master& addMaster(std::string name);
  const Master* findMaster(std::string_view name) const;
  const std::vector<std::unique_ptr<Master>>& masters() const {
    return masters_;
  }

 private:
  std::vector<std::unique_ptr<Master>> masters_;
  std::unordered_map<std::string, Master*> byName_;
};

}  // namespace pao::db
