// Design (DEF-side) model: die area, placement rows, routing track patterns,
// placed instances, and nets.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "db/lib.hpp"
#include "db/tech.hpp"
#include "geom/orient.hpp"

namespace pao::db {

/// DEF TRACKS statement: `count` tracks on `layer` at `start + i*step`.
/// `axis` is the coordinate the tracks fix: kHorizontal tracks fix y
/// (wires run horizontally along them), kVertical tracks fix x.
struct TrackPattern {
  int layer = -1;
  Dir axis = Dir::kHorizontal;
  Coord start = 0;
  Coord step = 0;
  int count = 0;

  /// Coordinate of track i.
  Coord coord(int i) const { return start + static_cast<Coord>(i) * step; }
  /// True when `v` lies exactly on a track of this pattern.
  bool onTrack(Coord v) const;
  /// All track coordinates within [lo, hi].
  std::vector<Coord> coordsIn(Coord lo, Coord hi) const;
};

struct Row {
  std::string name;
  std::string site;
  geom::Point origin;
  geom::Orient orient = geom::Orient::R0;
  int numSites = 0;
  Coord siteWidth = 0;
  Coord height = 0;
};

class Instance {
 public:
  std::string name;
  const Master* master = nullptr;
  geom::Point origin;
  geom::Orient orient = geom::Orient::R0;

  geom::Transform transform() const {
    return geom::Transform(origin, orient, master->size());
  }
  geom::Rect bbox() const {
    const geom::Point sz = geom::swapsAxes(orient)
                               ? geom::Point{master->height, master->width}
                               : geom::Point{master->width, master->height};
    return {origin.x, origin.y, origin.x + sz.x, origin.y + sz.y};
  }
};

/// One connection of a net: instance pin (instIdx >= 0) or an IO pin
/// (instIdx == -1, ioPinIdx into Design::ioPins()).
struct NetTerm {
  int instIdx = -1;
  int pinIdx = -1;   ///< pin index within the instance's master
  int ioPinIdx = -1; ///< index into Design::ioPins when instIdx == -1

  bool isIo() const { return instIdx < 0; }
};

struct IoPin {
  std::string name;
  int layer = -1;
  geom::Rect rect;  ///< absolute design coordinates
};

struct Net {
  std::string name;
  std::vector<NetTerm> terms;
};

class Design {
 public:
  std::string name;
  const Tech* tech = nullptr;
  const Library* lib = nullptr;
  geom::Rect dieArea;

  std::vector<Instance> instances;
  std::vector<Net> nets;
  std::vector<IoPin> ioPins;
  std::vector<TrackPattern> trackPatterns;
  std::vector<Row> rows;

  int findInstance(std::string_view instName) const;
  /// Track patterns on `layer` whose axis matches `axis`.
  std::vector<const TrackPattern*> tracks(int layer, Dir axis) const;
  /// Total number of net-attached instance pin terms across all nets.
  std::size_t numNetInstTerms() const;

  void buildInstanceIndex();

  // --- Mutation API (incremental sessions) ---------------------------------
  // Long-lived consumers (pao::core::OracleSession) track revision() to
  // detect edits made behind their back: every mutator below bumps it,
  // while direct writes to the public fields do not. Parsers and generators
  // that populate the fields wholesale keep working unchanged; only code
  // that mutates a design mid-session must go through these.

  /// Monotonic counter of mutations applied through the mutation API.
  std::uint64_t revision() const { return revision_; }
  /// Places instance `idx` at `newOrigin`.
  void moveInstance(int idx, geom::Point newOrigin);
  /// Re-orients instance `idx`.
  void setInstanceOrient(int idx, geom::Orient orient);
  /// Appends `inst`, indexes its name, and returns the new instance index.
  int addInstance(Instance inst);
  /// Erases instance `idx`. Net terms referencing it are dropped, terms
  /// referencing later instances are renumbered (indices above `idx` shift
  /// down by one), and the name index is rebuilt.
  void removeInstance(int idx);

 private:
  std::unordered_map<std::string, int> instByName_;
  std::uint64_t revision_ = 0;
};

}  // namespace pao::db
