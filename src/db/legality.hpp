// Placement legality checks: instances on the site grid, inside the die,
// non-overlapping. Useful both to validate parsed designs before analysis
// and as the guard a placement loop runs next to the pin access advisor.
#pragma once

#include <string>
#include <vector>

#include "db/design.hpp"

namespace pao::db {

struct PlacementViolation {
  enum class Kind {
    kOffDie,      ///< instance bbox leaves the die area
    kOffSite,     ///< origin not aligned to the row/site grid
    kOverlap,     ///< two instances overlap
    kNoRow,       ///< instance origin y matches no row
  } kind;
  int instA = -1;
  int instB = -1;  ///< second instance for overlaps, else -1

  std::string describe(const Design& design) const;
};

/// Checks every instance. Row/site checks are skipped when the design has
/// no rows (e.g. hand-built unit-test designs).
std::vector<PlacementViolation> checkPlacement(const Design& design);

}  // namespace pao::db
