#include "db/fingerprint.hpp"

#include <string_view>

namespace pao::db {

namespace {

struct Fnv {
  std::uint64_t h = 1469598103934665603ull;

  void bytes(const void* p, std::size_t n) {
    const auto* c = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= c[i];
      h *= 1099511628211ull;
    }
  }
  void str(std::string_view s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
  void i64(std::int64_t v) { bytes(&v, sizeof(v)); }
  void rect(const geom::Rect& r) {
    i64(r.xlo);
    i64(r.ylo);
    i64(r.xhi);
    i64(r.yhi);
  }
  void point(const geom::Point& p) {
    i64(p.x);
    i64(p.y);
  }
};

}  // namespace

std::uint64_t designFingerprint(const Design& d) {
  Fnv f;
  f.str(d.name);
  f.rect(d.dieArea);
  f.u64(d.rows.size());
  for (const Row& r : d.rows) {
    f.str(r.name);
    f.str(r.site);
    f.point(r.origin);
    f.i64(static_cast<int>(r.orient));
    f.i64(r.numSites);
    f.i64(r.siteWidth);
    f.i64(r.height);
  }
  f.u64(d.trackPatterns.size());
  for (const TrackPattern& tp : d.trackPatterns) {
    f.i64(tp.layer);
    f.i64(static_cast<int>(tp.axis));
    f.i64(tp.start);
    f.i64(tp.step);
    f.i64(tp.count);
  }
  f.u64(d.instances.size());
  for (const Instance& inst : d.instances) {
    f.str(inst.name);
    f.str(inst.master != nullptr ? std::string_view(inst.master->name)
                                 : std::string_view());
    f.point(inst.origin);
    f.i64(static_cast<int>(inst.orient));
  }
  f.u64(d.ioPins.size());
  for (const IoPin& p : d.ioPins) {
    f.str(p.name);
    f.i64(p.layer);
    f.rect(p.rect);
  }
  f.u64(d.nets.size());
  for (const Net& n : d.nets) {
    f.str(n.name);
    f.u64(n.terms.size());
    for (const NetTerm& t : n.terms) {
      f.i64(t.instIdx);
      f.i64(t.pinIdx);
      f.i64(t.ioPinIdx);
    }
  }
  return f.h;
}

}  // namespace pao::db
