#include "db/legality.hpp"

#include <algorithm>

#include "geom/grid_index.hpp"

namespace pao::db {

std::string PlacementViolation::describe(const Design& design) const {
  std::string out;
  switch (kind) {
    case Kind::kOffDie: out = "off-die "; break;
    case Kind::kOffSite: out = "off-site "; break;
    case Kind::kOverlap: out = "overlap "; break;
    case Kind::kNoRow: out = "no-row "; break;
  }
  if (instA >= 0) out += design.instances[instA].name;
  if (instB >= 0) out += " / " + design.instances[instB].name;
  return out;
}

std::vector<PlacementViolation> checkPlacement(const Design& design) {
  std::vector<PlacementViolation> out;
  using Kind = PlacementViolation::Kind;

  // Row lookup by y (multi-height cells sit on a row like everyone else).
  std::vector<const Row*> rows;
  for (const Row& r : design.rows) rows.push_back(&r);

  geom::GridIndex<int> index(1 << 14);
  for (int i = 0; i < static_cast<int>(design.instances.size()); ++i) {
    const Instance& inst = design.instances[i];
    const geom::Rect bbox = inst.bbox();

    if (!design.dieArea.empty() && !design.dieArea.contains(bbox)) {
      out.push_back({Kind::kOffDie, i, -1});
    }

    if (!rows.empty() && inst.master->cls != MasterClass::kBlock) {
      const Row* row = nullptr;
      for (const Row* r : rows) {
        if (r->origin.y == inst.origin.y) {
          row = r;
          break;
        }
      }
      if (row == nullptr) {
        out.push_back({Kind::kNoRow, i, -1});
      } else if (row->siteWidth > 0 &&
                 (inst.origin.x - row->origin.x) % row->siteWidth != 0) {
        out.push_back({Kind::kOffSite, i, -1});
      }
    }

    // Overlaps against previously indexed instances.
    index.query(bbox, [&](const geom::Rect& other, int j) {
      if (other.overlaps(bbox)) out.push_back({Kind::kOverlap, j, i});
    });
    index.insert(bbox, i);
  }
  return out;
}

}  // namespace pao::db
