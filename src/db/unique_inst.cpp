#include "db/unique_inst.hpp"

#include <map>
#include <tuple>

namespace pao::db {

std::vector<Coord> trackOffsets(const Design& design, const Instance& inst) {
  std::vector<Coord> offsets;
  offsets.reserve(design.trackPatterns.size());
  for (const TrackPattern& tp : design.trackPatterns) {
    if (tp.step <= 0) {
      offsets.push_back(0);
      continue;
    }
    const Coord v =
        tp.axis == Dir::kHorizontal ? inst.origin.y : inst.origin.x;
    const Coord m = (v - tp.start) % tp.step;
    offsets.push_back(m < 0 ? m + tp.step : m);
  }
  return offsets;
}

UniqueInstances extractUniqueInstances(const Design& design) {
  UniqueInstances out;
  out.classOf.assign(design.instances.size(), -1);

  using Key = std::tuple<const Master*, geom::Orient, std::vector<Coord>>;
  std::map<Key, int> classIdx;

  for (int i = 0; i < static_cast<int>(design.instances.size()); ++i) {
    const Instance& inst = design.instances[i];
    Key key{inst.master, inst.orient, trackOffsets(design, inst)};
    const auto it = classIdx.find(key);
    if (it == classIdx.end()) {
      UniqueInstance ui;
      ui.master = inst.master;
      ui.orient = inst.orient;
      ui.offsets = std::get<2>(key);
      ui.representative = i;
      ui.members.push_back(i);
      classIdx.emplace(std::move(key), static_cast<int>(out.classes.size()));
      out.classOf[i] = static_cast<int>(out.classes.size());
      out.classes.push_back(std::move(ui));
    } else {
      out.classes[it->second].members.push_back(i);
      out.classOf[i] = it->second;
    }
  }
  return out;
}

}  // namespace pao::db
