#include "db/unique_inst.hpp"

#include <algorithm>

#include "util/jobs.hpp"

namespace pao::db {

std::vector<Coord> trackOffsets(const Design& design, const Instance& inst) {
  std::vector<Coord> offsets;
  offsets.reserve(design.trackPatterns.size());
  for (const TrackPattern& tp : design.trackPatterns) {
    if (tp.step <= 0) {
      offsets.push_back(0);
      continue;
    }
    const Coord v =
        tp.axis == Dir::kHorizontal ? inst.origin.y : inst.origin.x;
    const Coord m = (v - tp.start) % tp.step;
    offsets.push_back(m < 0 ? m + tp.step : m);
  }
  return offsets;
}

UniqueInstances extractUniqueInstances(const Design& design) {
  UniqueInstances out;
  out.classOf.assign(design.instances.size(), -1);

  using Key = std::tuple<const Master*, geom::Orient, std::vector<Coord>>;
  std::map<Key, int> classIdx;

  for (int i = 0; i < static_cast<int>(design.instances.size()); ++i) {
    const Instance& inst = design.instances[i];
    Key key{inst.master, inst.orient, trackOffsets(design, inst)};
    const auto it = classIdx.find(key);
    if (it == classIdx.end()) {
      UniqueInstance ui;
      ui.master = inst.master;
      ui.orient = inst.orient;
      ui.offsets = std::get<2>(key);
      ui.representative = i;
      ui.members.push_back(i);
      classIdx.emplace(std::move(key), static_cast<int>(out.classes.size()));
      out.classOf[i] = static_cast<int>(out.classes.size());
      out.classes.push_back(std::move(ui));
    } else {
      out.classes[it->second].members.push_back(i);
      out.classOf[i] = it->second;
    }
  }
  return out;
}

UniqueInstances extractUniqueInstances(const Design& design, int numThreads) {
  using Key = std::tuple<const Master*, geom::Orient, std::vector<Coord>>;
  const std::size_t n = design.instances.size();
  // Fixed shard target, like DrcEngine's rangeChunks: the shard (= job)
  // count must depend only on the design, never on the worker count, so
  // pao.jobs.executed stays thread-invariant. Shards stay coarse (at
  // least ~1k instances each): the merge is one map probe per
  // *shard-local class*, so per-shard overhead is set by the class
  // count, not the instance count.
  constexpr std::size_t kShardTarget = 64;
  const std::size_t numShards = std::min<std::size_t>(
      kShardTarget, std::max<std::size_t>(1, n / 1024 + 1));
  if (numShards <= 1) return extractUniqueInstances(design);

  struct Shard {
    std::size_t begin = 0;
    std::size_t end = 0;
    /// Signature -> shard-local class id, local ids dense in shard-local
    /// first-appearance order.
    std::map<Key, int> local;
    std::vector<const Key*> keyOf;  ///< local class id -> signature
    std::vector<int> localClassOf;  ///< per instance in [begin, end)
  };
  std::vector<Shard> shards(numShards);
  for (std::size_t s = 0; s < numShards; ++s) {
    shards[s].begin = n * s / numShards;
    shards[s].end = n * (s + 1) / numShards;
  }

  util::JobGraph graph;
  graph.addJobRange(numShards, [&](std::size_t s) {
    Shard& sh = shards[s];
    sh.localClassOf.reserve(sh.end - sh.begin);
    for (std::size_t i = sh.begin; i < sh.end; ++i) {
      const Instance& inst = design.instances[i];
      Key key{inst.master, inst.orient, trackOffsets(design, inst)};
      const auto [it, added] =
          sh.local.emplace(std::move(key), static_cast<int>(sh.keyOf.size()));
      if (added) sh.keyOf.push_back(&it->first);
      sh.localClassOf.push_back(it->second);
    }
  });
  graph.run(numThreads);

  // Canonical merge: shards in instance order, each shard's new signatures
  // in shard-local first-appearance order. A signature's global class is
  // created when the FIRST shard containing it merges, so the global class
  // sequence equals the serial first-appearance sequence.
  UniqueInstances out;
  out.classOf.assign(n, -1);
  std::map<Key, int> globalIdx;
  std::vector<std::vector<int>> localToGlobal(numShards);
  for (std::size_t s = 0; s < numShards; ++s) {
    Shard& sh = shards[s];
    localToGlobal[s].reserve(sh.keyOf.size());
    for (const Key* key : sh.keyOf) {
      const auto [it, added] =
          globalIdx.emplace(*key, static_cast<int>(out.classes.size()));
      if (added) {
        UniqueInstance ui;
        ui.master = std::get<0>(*key);
        ui.orient = std::get<1>(*key);
        ui.offsets = std::get<2>(*key);
        out.classes.push_back(std::move(ui));
      }
      localToGlobal[s].push_back(it->second);
    }
  }
  // Members fill by ascending instance index — the serial convention —
  // and the representative is the lowest member.
  for (std::size_t s = 0; s < numShards; ++s) {
    const Shard& sh = shards[s];
    for (std::size_t i = sh.begin; i < sh.end; ++i) {
      const int cls = localToGlobal[s][sh.localClassOf[i - sh.begin]];
      out.classOf[i] = cls;
      out.classes[cls].members.push_back(static_cast<int>(i));
    }
  }
  for (UniqueInstance& cls : out.classes) {
    cls.representative = cls.members.front();
  }
  return out;
}

UniqueInstanceIndex::UniqueInstanceIndex(const Design& design)
    : design_(&design), ui_(extractUniqueInstances(design)) {
  buildClassIdx();
}

UniqueInstanceIndex::UniqueInstanceIndex(const Design& design, int numThreads)
    : design_(&design), ui_(extractUniqueInstances(design, numThreads)) {
  buildClassIdx();
}

void UniqueInstanceIndex::buildClassIdx() {
  for (int c = 0; c < static_cast<int>(ui_.classes.size()); ++c) {
    const UniqueInstance& cls = ui_.classes[c];
    classIdx_.emplace(Key{cls.master, cls.orient, cls.offsets}, c);
  }
}

int UniqueInstanceIndex::attach(int instIdx) {
  const Instance& inst = design_->instances[instIdx];
  Key key{inst.master, inst.orient, trackOffsets(*design_, inst)};
  const auto it = classIdx_.find(key);
  if (it == classIdx_.end()) {
    UniqueInstance cls;
    cls.master = inst.master;
    cls.orient = inst.orient;
    cls.offsets = std::get<2>(key);
    cls.representative = instIdx;
    cls.members.push_back(instIdx);
    const int c = static_cast<int>(ui_.classes.size());
    classIdx_.emplace(std::move(key), c);
    ui_.classes.push_back(std::move(cls));
    return c;
  }
  UniqueInstance& cls = ui_.classes[it->second];
  cls.members.insert(
      std::lower_bound(cls.members.begin(), cls.members.end(), instIdx),
      instIdx);
  cls.representative = cls.members.front();
  return it->second;
}

void UniqueInstanceIndex::detach(int instIdx, int cls) {
  UniqueInstance& c = ui_.classes[cls];
  std::erase(c.members, instIdx);
  c.representative = c.members.empty() ? -1 : c.members.front();
}

UniqueInstanceIndex::Reclass UniqueInstanceIndex::update(int instIdx) {
  Reclass r;
  r.oldClass = ui_.classOf[instIdx];
  detach(instIdx, r.oldClass);
  r.newClass = attach(instIdx);
  ui_.classOf[instIdx] = r.newClass;
  return r;
}

int UniqueInstanceIndex::add(int instIdx) {
  const int cls = attach(instIdx);
  ui_.classOf.push_back(cls);
  return cls;
}

int UniqueInstanceIndex::remove(int instIdx) {
  const int cls = ui_.classOf[instIdx];
  detach(instIdx, cls);
  ui_.classOf.erase(ui_.classOf.begin() + instIdx);
  for (UniqueInstance& c : ui_.classes) {
    for (int& m : c.members) {
      if (m > instIdx) --m;
    }
    if (c.representative > instIdx) --c.representative;
  }
  return cls;
}

}  // namespace pao::db
