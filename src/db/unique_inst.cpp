#include "db/unique_inst.hpp"

#include <algorithm>

namespace pao::db {

std::vector<Coord> trackOffsets(const Design& design, const Instance& inst) {
  std::vector<Coord> offsets;
  offsets.reserve(design.trackPatterns.size());
  for (const TrackPattern& tp : design.trackPatterns) {
    if (tp.step <= 0) {
      offsets.push_back(0);
      continue;
    }
    const Coord v =
        tp.axis == Dir::kHorizontal ? inst.origin.y : inst.origin.x;
    const Coord m = (v - tp.start) % tp.step;
    offsets.push_back(m < 0 ? m + tp.step : m);
  }
  return offsets;
}

UniqueInstances extractUniqueInstances(const Design& design) {
  UniqueInstances out;
  out.classOf.assign(design.instances.size(), -1);

  using Key = std::tuple<const Master*, geom::Orient, std::vector<Coord>>;
  std::map<Key, int> classIdx;

  for (int i = 0; i < static_cast<int>(design.instances.size()); ++i) {
    const Instance& inst = design.instances[i];
    Key key{inst.master, inst.orient, trackOffsets(design, inst)};
    const auto it = classIdx.find(key);
    if (it == classIdx.end()) {
      UniqueInstance ui;
      ui.master = inst.master;
      ui.orient = inst.orient;
      ui.offsets = std::get<2>(key);
      ui.representative = i;
      ui.members.push_back(i);
      classIdx.emplace(std::move(key), static_cast<int>(out.classes.size()));
      out.classOf[i] = static_cast<int>(out.classes.size());
      out.classes.push_back(std::move(ui));
    } else {
      out.classes[it->second].members.push_back(i);
      out.classOf[i] = it->second;
    }
  }
  return out;
}

UniqueInstanceIndex::UniqueInstanceIndex(const Design& design)
    : design_(&design), ui_(extractUniqueInstances(design)) {
  for (int c = 0; c < static_cast<int>(ui_.classes.size()); ++c) {
    const UniqueInstance& cls = ui_.classes[c];
    classIdx_.emplace(Key{cls.master, cls.orient, cls.offsets}, c);
  }
}

int UniqueInstanceIndex::attach(int instIdx) {
  const Instance& inst = design_->instances[instIdx];
  Key key{inst.master, inst.orient, trackOffsets(*design_, inst)};
  const auto it = classIdx_.find(key);
  if (it == classIdx_.end()) {
    UniqueInstance cls;
    cls.master = inst.master;
    cls.orient = inst.orient;
    cls.offsets = std::get<2>(key);
    cls.representative = instIdx;
    cls.members.push_back(instIdx);
    const int c = static_cast<int>(ui_.classes.size());
    classIdx_.emplace(std::move(key), c);
    ui_.classes.push_back(std::move(cls));
    return c;
  }
  UniqueInstance& cls = ui_.classes[it->second];
  cls.members.insert(
      std::lower_bound(cls.members.begin(), cls.members.end(), instIdx),
      instIdx);
  cls.representative = cls.members.front();
  return it->second;
}

void UniqueInstanceIndex::detach(int instIdx, int cls) {
  UniqueInstance& c = ui_.classes[cls];
  std::erase(c.members, instIdx);
  c.representative = c.members.empty() ? -1 : c.members.front();
}

UniqueInstanceIndex::Reclass UniqueInstanceIndex::update(int instIdx) {
  Reclass r;
  r.oldClass = ui_.classOf[instIdx];
  detach(instIdx, r.oldClass);
  r.newClass = attach(instIdx);
  ui_.classOf[instIdx] = r.newClass;
  return r;
}

int UniqueInstanceIndex::add(int instIdx) {
  const int cls = attach(instIdx);
  ui_.classOf.push_back(cls);
  return cls;
}

int UniqueInstanceIndex::remove(int instIdx) {
  const int cls = ui_.classOf[instIdx];
  detach(instIdx, cls);
  ui_.classOf.erase(ui_.classOf.begin() + instIdx);
  for (UniqueInstance& c : ui_.classes) {
    for (int& m : c.members) {
      if (m > instIdx) --m;
    }
    if (c.representative > instIdx) --c.representative;
  }
  return cls;
}

}  // namespace pao::db
