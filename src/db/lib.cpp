#include "db/lib.hpp"

namespace pao::db {

geom::Rect Pin::bbox() const {
  geom::Rect b;
  for (const PinShape& s : shapes) b = b.merge(s.rect);
  return b;
}

std::vector<geom::Rect> Pin::shapesOnLayer(int layer) const {
  std::vector<geom::Rect> out;
  for (const PinShape& s : shapes) {
    if (s.layer == layer) out.push_back(s.rect);
  }
  return out;
}

const Pin* Master::findPin(std::string_view pinName) const {
  for (const Pin& p : pins) {
    if (p.name == pinName) return &p;
  }
  return nullptr;
}

std::vector<int> Master::signalPinIndices() const {
  std::vector<int> out;
  for (int i = 0; i < static_cast<int>(pins.size()); ++i) {
    if (pins[i].use == PinUse::kSignal || pins[i].use == PinUse::kClock) {
      out.push_back(i);
    }
  }
  return out;
}

Master& Library::addMaster(std::string name) {
  auto m = std::make_unique<Master>();
  m->name = std::move(name);
  Master* raw = m.get();
  masters_.push_back(std::move(m));
  byName_[raw->name] = raw;
  return *raw;
}

const Master* Library::findMaster(std::string_view name) const {
  const auto it = byName_.find(std::string(name));
  return it == byName_.end() ? nullptr : it->second;
}

}  // namespace pao::db
