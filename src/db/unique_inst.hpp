// Unique-instance extraction (paper Sec. II-A): instances sharing the same
// signature — (cell master, orientation, offsets to every track pattern in
// the design) — have identical intra-cell pin access and are analyzed once.
#pragma once

#include <map>
#include <tuple>
#include <vector>

#include "db/design.hpp"

namespace pao::db {

struct UniqueInstance {
  const Master* master = nullptr;
  geom::Orient orient = geom::Orient::R0;
  /// One offset per design track pattern: the instance origin coordinate
  /// (x for vertical-axis patterns, y for horizontal) modulo the track step.
  std::vector<Coord> offsets;
  /// Index of a representative placed instance in Design::instances.
  int representative = -1;
  /// All placed instances sharing this signature.
  std::vector<int> members;
};

struct UniqueInstances {
  std::vector<UniqueInstance> classes;
  /// instIdx -> index into `classes` (-1 for non-core masters if skipped).
  std::vector<int> classOf;
};

/// Groups Design::instances into unique-instance classes. Filler cells
/// (masters with no signal pins) still get classes — they participate in
/// boundary DRC — but callers typically skip them for access analysis.
UniqueInstances extractUniqueInstances(const Design& design);

/// Sharded parallel extraction: contiguous instance ranges are signatured
/// into per-shard maps on a util::JobGraph, then merged canonically in
/// shard order (each shard's new signatures in shard-local first-appearance
/// order). That merge order reproduces the serial first-appearance order
/// exactly, so class indices — and everything keyed by them — are
/// byte-identical to extractUniqueInstances(design) at any thread or shard
/// count (tests/test_stream_parse.cpp locks this).
UniqueInstances extractUniqueInstances(const Design& design, int numThreads);

/// The track-offset part of an instance's signature.
std::vector<Coord> trackOffsets(const Design& design, const Instance& inst);

/// Incrementally-maintained unique-instance classes over a mutating design
/// (the batch equivalent of extractUniqueInstances, kept consistent under
/// the Design mutation API). Two invariants make it usable as the backbone
/// of per-class caches:
///   * Class indices are stable for the lifetime of the index. A class whose
///     last member leaves stays allocated (empty members, representative -1)
///     and is revived when an instance with its signature reappears, so
///     results keyed by class index (Steps 1-2 access, Step-3 pair memos)
///     survive arbitrary mutation sequences.
///   * `members` is kept sorted ascending and `representative` is always
///     members.front() — the same lowest-index convention batch extraction
///     uses, so a fresh extractUniqueInstances on the mutated design picks
///     the same representative for every populated signature.
class UniqueInstanceIndex {
 public:
  explicit UniqueInstanceIndex(const Design& design);
  /// Builds the initial classes with the sharded parallel extraction
  /// (identical result at any thread count); mutations stay serial.
  UniqueInstanceIndex(const Design& design, int numThreads);

  const UniqueInstances& classes() const { return ui_; }
  int classOf(int instIdx) const { return ui_.classOf[instIdx]; }

  struct Reclass {
    int oldClass = -1;
    int newClass = -1;
    bool changed() const { return oldClass != newClass; }
  };
  /// Re-signatures instance `instIdx` after its origin or orientation
  /// changed; maintains members/representative/classOf.
  Reclass update(int instIdx);
  /// Registers a newly appended instance (instIdx == design.instances.size()
  /// - 1); returns its class index (possibly a fresh class).
  int add(int instIdx);
  /// Unregisters `instIdx` (call in step with Design::removeInstance) and
  /// renumbers all stored instance indices above it. Returns the class the
  /// instance left.
  int remove(int instIdx);

 private:
  using Key = std::tuple<const Master*, geom::Orient, std::vector<Coord>>;
  /// Class for `inst`'s signature, creating (or reviving) one as needed and
  /// attaching `instIdx` to it.
  int attach(int instIdx);
  void detach(int instIdx, int cls);
  void buildClassIdx();

  const Design* design_;
  UniqueInstances ui_;
  std::map<Key, int> classIdx_;
};

}  // namespace pao::db
