// Unique-instance extraction (paper Sec. II-A): instances sharing the same
// signature — (cell master, orientation, offsets to every track pattern in
// the design) — have identical intra-cell pin access and are analyzed once.
#pragma once

#include <vector>

#include "db/design.hpp"

namespace pao::db {

struct UniqueInstance {
  const Master* master = nullptr;
  geom::Orient orient = geom::Orient::R0;
  /// One offset per design track pattern: the instance origin coordinate
  /// (x for vertical-axis patterns, y for horizontal) modulo the track step.
  std::vector<Coord> offsets;
  /// Index of a representative placed instance in Design::instances.
  int representative = -1;
  /// All placed instances sharing this signature.
  std::vector<int> members;
};

struct UniqueInstances {
  std::vector<UniqueInstance> classes;
  /// instIdx -> index into `classes` (-1 for non-core masters if skipped).
  std::vector<int> classOf;
};

/// Groups Design::instances into unique-instance classes. Filler cells
/// (masters with no signal pins) still get classes — they participate in
/// boundary DRC — but callers typically skip them for access analysis.
UniqueInstances extractUniqueInstances(const Design& design);

/// The track-offset part of an instance's signature.
std::vector<Coord> trackOffsets(const Design& design, const Instance& inst);

}  // namespace pao::db
