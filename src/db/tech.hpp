// Technology model: metal/cut layers with design rules, and via definitions.
// This is the LEF-side half of the database. Rules modeled are the ones the
// paper's DRC validation exercises: width-and-PRL spacing tables, min step,
// end-of-line spacing, min area, and cut spacing.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "geom/geom.hpp"

namespace pao::db {

using geom::Coord;
using geom::Rect;

enum class LayerType : std::uint8_t { kRouting, kCut, kMasterslice };
enum class Dir : std::uint8_t { kHorizontal, kVertical };

constexpr Dir orthogonal(Dir d) {
  return d == Dir::kHorizontal ? Dir::kVertical : Dir::kHorizontal;
}

/// One row of a LEF57-style SPACINGTABLE PARALLELRUNLENGTH: shapes wider than
/// `width` with projected run length over `prl` require `spacing`.
struct SpacingTableEntry {
  Coord width = 0;
  Coord prl = 0;
  Coord spacing = 0;
};

/// End-of-line spacing (LEF ENDOFLINE): an edge shorter than `eolWidth`
/// requires `space` clearance within a `within` halo beyond the line end.
struct EolRule {
  Coord space = 0;
  Coord eolWidth = 0;
  Coord within = 0;
};

/// MINSTEP: boundary edges shorter than `minStepLength` are "steps"; more
/// than `maxEdges` consecutive steps is a violation.
struct MinStepRule {
  Coord minStepLength = 0;
  int maxEdges = 1;
};

struct Layer {
  std::string name;
  LayerType type = LayerType::kRouting;
  int index = -1;  ///< position in Tech::layers()

  // Routing-layer attributes.
  Dir dir = Dir::kHorizontal;  ///< preferred routing direction
  Coord width = 0;             ///< default wire width
  Coord pitch = 0;             ///< preferred-direction track pitch
  Coord minArea = 0;
  std::vector<SpacingTableEntry> spacingTable;  ///< sorted by (width, prl)
  std::optional<MinStepRule> minStep;
  std::optional<EolRule> eol;

  // Cut-layer attributes.
  Coord cutSpacing = 0;

  /// Required spacing for a pair of shapes given the wider shape's width and
  /// their projected run length. Falls back to the first table row (the
  /// default min spacing) when the table is empty-width only.
  Coord spacing(Coord width, Coord prl) const;
  /// The default (narrow-wire, any-PRL) min spacing.
  Coord minSpacing() const;
};

/// A via definition: three stacked rects (bottom enclosure, cut, top
/// enclosure) centered on the via origin.
struct ViaDef {
  std::string name;
  int index = -1;     ///< position in Tech::viaDefs() (stable id)
  int botLayer = -1;  ///< routing layer index
  int cutLayer = -1;  ///< cut layer index
  int topLayer = -1;  ///< routing layer index
  Rect botEnc;        ///< relative to via origin
  Rect cut;
  Rect topEnc;
  bool isDefault = false;

  Rect botEncAt(geom::Point p) const { return botEnc.translate(p.x, p.y); }
  Rect cutAt(geom::Point p) const { return cut.translate(p.x, p.y); }
  Rect topEncAt(geom::Point p) const { return topEnc.translate(p.x, p.y); }
};

class Tech {
 public:
  Tech() = default;

  std::string name;
  int dbuPerMicron = 2000;

  /// References returned by addLayer/addViaDef are stable for the lifetime
  /// of the Tech: storage is a std::deque, which never relocates existing
  /// elements on growth. Callers may hold a Layer&/ViaDef& across later
  /// addLayer/addViaDef calls (pao_lint's pointer-stability rule guards the
  /// vector-backed pattern this replaced).
  Layer& addLayer(std::string name, LayerType type);
  ViaDef& addViaDef(std::string name);

  const std::deque<Layer>& layers() const { return layers_; }
  std::deque<Layer>& layers() { return layers_; }
  const Layer& layer(int idx) const { return layers_.at(idx); }
  const Layer* findLayer(std::string_view name) const;

  const std::deque<ViaDef>& viaDefs() const { return viaDefs_; }
  const ViaDef& viaDef(int idx) const { return viaDefs_.at(idx); }
  const ViaDef* findViaDef(std::string_view name) const;
  /// All via defs whose bottom routing layer is `botLayer`, default-first.
  std::vector<const ViaDef*> viaDefsFromLayer(int botLayer) const;

  /// Number of routing layers (layers of type kRouting).
  int numRoutingLayers() const;
  /// Index of the routing layer immediately above `layerIdx`, or -1.
  int routingLayerAbove(int layerIdx) const;

 private:
  // Deques: element references survive emplace_back (unlike std::vector),
  // which is what makes the stability guarantee on add* above hold.
  std::deque<Layer> layers_;
  std::deque<ViaDef> viaDefs_;
  std::unordered_map<std::string, int> layerByName_;
  std::unordered_map<std::string, int> viaByName_;
};

}  // namespace pao::db
