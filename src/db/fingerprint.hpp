// Content fingerprint of a Design: a 64-bit FNV-1a hash over everything
// the DEF round-trip preserves (name, die area, rows, tracks, instances,
// IO pins, nets — masters by name). Two designs with equal fingerprints
// are byte-identical under writeDef. The scale-equivalence tests use this
// to compare streamed vs legacy parses of multi-hundred-MB inputs without
// materializing both DEF strings.
#pragma once

#include <cstdint>

#include "db/design.hpp"

namespace pao::db {

std::uint64_t designFingerprint(const Design& design);

}  // namespace pao::db
