#include "benchgen/huge.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <ostream>
#include <utility>
#include <vector>

#include "benchgen/tech_gen.hpp"
#include "lefdef/def_writer.hpp"

namespace pao::benchgen {

using db::Master;
using geom::Coord;

namespace {

/// Deterministic LCG (the pao_cli bench-incremental constants); cheap
/// enough to re-run the whole placement stream once per DEF section.
struct Lcg {
  std::uint64_t state;
  std::uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 17;
  }
};

struct Placed {
  std::size_t idx;
  int masterIdx;  ///< into the weighted pool
  Coord x, y;
  geom::Orient orient;
};

struct Layout {
  std::vector<const Master*> pool;  ///< weighted core masters
  Coord height = 0;
  Coord rowSites = 0;
  Coord dieW = 0;
  int maxRows = 0;
  std::size_t targetCells = 0;
  unsigned gapPerMille = 0;  ///< P(gap) * 1000 from utilization
};

Layout planLayout(const HugeSpec& spec, double scale,
                  const db::Library& lib) {
  Layout lay;
  for (const auto& mp : lib.masters()) {
    if (mp->cls != db::MasterClass::kCore) continue;
    lay.pool.push_back(mp.get());
    if (mp->width <= spec.siteWidth * 3) {
      lay.pool.push_back(mp.get());  // double weight for small cells
    }
  }
  lay.targetCells = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(spec.numCells) *
                                  scale));
  double avgSites = 0;
  for (const Master* m : lay.pool) {
    avgSites += static_cast<double>(m->width) / spec.siteWidth;
  }
  avgSites /= static_cast<double>(lay.pool.size());
  lay.height = cellHeight(nodeParams(spec.node));
  const double totalSites = static_cast<double>(lay.targetCells) * avgSites /
                            spec.utilization;
  const int numRows = std::max(
      2,
      static_cast<int>(std::sqrt(totalSites * spec.siteWidth / lay.height)));
  lay.rowSites = std::max<Coord>(
      64, static_cast<Coord>(totalSites / numRows) + 1);
  lay.dieW = lay.rowSites * spec.siteWidth;
  lay.maxRows = numRows * 2 + 4;  // slack; the loop stops at targetCells
  lay.gapPerMille = static_cast<unsigned>(
      std::clamp(1000.0 * (1.0 - spec.utilization), 0.0, 999.0));
  return lay;
}

/// The one deterministic placement stream every DEF section replays.
/// Returns {cells placed, rows used}.
template <class Fn>
std::pair<std::size_t, int> placeLoop(const HugeSpec& spec,
                                      const Layout& lay, Fn&& fn) {
  Lcg rng{spec.seed * 2654435761ULL + 1};
  std::size_t placed = 0;
  int rowsUsed = 0;
  for (int r = 0; r < lay.maxRows && placed < lay.targetCells; ++r) {
    rowsUsed = r + 1;
    const Coord y = static_cast<Coord>(r) * lay.height;
    Coord x = 0;
    while (x < lay.dieW && placed < lay.targetCells) {
      if (rng.next() % 1000 < lay.gapPerMille) {
        x += (1 + static_cast<Coord>(rng.next() % 3)) * spec.siteWidth;
        continue;
      }
      const int mi = static_cast<int>(rng.next() % lay.pool.size());
      const Master* m = lay.pool[mi];
      if (x + m->width > lay.dieW) break;
      const bool flipRow = r % 2 != 0;
      const bool mirror = rng.next() % 100 < 35;
      const geom::Orient orient =
          flipRow ? (mirror ? geom::Orient::R180 : geom::Orient::MX)
                  : (mirror ? geom::Orient::MY : geom::Orient::R0);
      fn(Placed{placed, mi, x, y, orient});
      x += m->width;
      ++placed;
    }
  }
  return {placed, rowsUsed};
}

std::string instName(std::size_t idx) {
  return "inst_" + std::to_string(idx);
}

/// Driver/sink pin choice per pool master, mirroring generate()'s netlist
/// conventions (Z/Q/P* drive; other signal or clock pins sink).
struct MasterPins {
  int driver = 0;
  std::vector<int> sinks;
};

std::vector<MasterPins> classifyPins(const std::vector<const Master*>& pool) {
  std::vector<MasterPins> out(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const Master& m = *pool[i];
    for (int p = 0; p < static_cast<int>(m.pins.size()); ++p) {
      const db::Pin& pin = m.pins[p];
      if (pin.use != db::PinUse::kSignal && pin.use != db::PinUse::kClock) {
        continue;
      }
      if (pin.name == "Z" || pin.name == "Q" || pin.name[0] == 'P') {
        out[i].driver = p;
      } else {
        out[i].sinks.push_back(p);
      }
    }
    if (out[i].sinks.empty()) out[i].sinks.push_back(out[i].driver);
  }
  return out;
}

}  // namespace

HugeSpec hugeSpec() { return {}; }

HugeTechLib makeHugeTechLib(const HugeSpec& spec) {
  HugeTechLib tl;
  const NodeParams node = nodeParams(spec.node);
  tl.tech = makeTech(node);
  LibParams lp;
  lp.node = node;
  lp.siteWidth = spec.siteWidth;
  lp.numCombMasters = spec.numCombMasters;
  tl.lib = makeLibrary(lp, *tl.tech);
  return tl;
}

HugeCounts writeHugeDef(const HugeSpec& spec, double scale,
                        const db::Tech& tech, const db::Library& lib,
                        std::ostream& def) {
  namespace out = lefdef::defout;
  const Layout lay = planLayout(spec, scale, lib);
  const std::size_t numNets = std::max<std::size_t>(
      1,
      static_cast<std::size_t>(static_cast<double>(spec.numNets) * scale));
  const std::size_t numIoPins = static_cast<std::size_t>(
      static_cast<double>(spec.numIoPins) * scale);

  // Pass 1 — dry run: the exact cell and row counts, needed up front for
  // DIEAREA and the section headers.
  const auto [cells, rowsUsed] = placeLoop(spec, lay, [](const Placed&) {});
  const Coord dieH = static_cast<Coord>(rowsUsed) * lay.height;
  const NodeParams node = nodeParams(spec.node);

  out::header(def, spec.name, tech.dbuPerMicron, {0, 0, lay.dieW, dieH});
  for (int r = 0; r < rowsUsed; ++r) {
    db::Row row;
    row.name = "ROW_" + std::to_string(r);
    row.site = "core";
    row.origin = {0, static_cast<Coord>(r) * lay.height};
    row.orient = r % 2 == 0 ? geom::Orient::R0 : geom::Orient::MX;
    row.numSites = static_cast<int>(lay.rowSites);
    row.siteWidth = spec.siteWidth;
    row.height = lay.height;
    out::row(def, row);
  }
  out::sectionGap(def);

  // Track patterns exactly as generate() lays them out: both axes per
  // routing layer, all starting at half the M1 pitch.
  for (const db::Layer& l : tech.layers()) {
    if (l.type != db::LayerType::kRouting) continue;
    db::TrackPattern ty;
    ty.layer = l.index;
    ty.axis = db::Dir::kHorizontal;
    ty.start = node.m1Pitch / 2;
    ty.step = l.pitch;
    ty.count = static_cast<int>((dieH - ty.start) / l.pitch);
    out::track(def, ty, l.name);
    db::TrackPattern tx = ty;
    tx.axis = db::Dir::kVertical;
    tx.count = static_cast<int>((lay.dieW - tx.start) / l.pitch);
    out::track(def, tx, l.name);
  }
  out::sectionGap(def);

  // Pass 2 — COMPONENTS.
  out::componentsBegin(def, cells);
  placeLoop(spec, lay, [&](const Placed& p) {
    out::component(def, instName(p.idx), lay.pool[p.masterIdx]->name,
                   {p.x, p.y}, p.orient);
  });
  out::componentsEnd(def);

  // PINS — boundary IO on M4, like generate().
  const db::Layer* m4 = tech.findLayer("M4");
  const Coord w = m4->width;
  out::pinsBegin(def, numIoPins);
  {
    Lcg rng{spec.seed * 88172645463325252ULL + 7};
    for (std::size_t k = 0; k < numIoPins; ++k) {
      const Coord t =
          static_cast<Coord>(rng.next() % std::max<Coord>(1, lay.dieW));
      const Coord tv =
          static_cast<Coord>(rng.next() % std::max<Coord>(1, dieH));
      geom::Rect rect;
      switch (k % 4) {
        case 0: rect = {t, 0, t + 4 * w, 2 * w}; break;
        case 1: rect = {t, dieH - 2 * w, t + 4 * w, dieH}; break;
        case 2: rect = {0, tv, 2 * w, tv + 4 * w}; break;
        default: rect = {lay.dieW - 2 * w, tv, lay.dieW, tv + 4 * w}; break;
      }
      out::pin(def, "io_" + std::to_string(k), m4->name, rect);
    }
  }
  out::pinsEnd(def);

  // IO pin k joins net (k * 977) % numNets; nets stream in index order, so
  // a sorted (net, io) list sweeps along with them.
  std::vector<std::pair<std::size_t, std::size_t>> ioOfNet;
  ioOfNet.reserve(numIoPins);
  for (std::size_t k = 0; k < numIoPins; ++k) {
    ioOfNet.emplace_back((k * 977) % numNets, k);
  }
  std::sort(ioOfNet.begin(), ioOfNet.end());

  // Pass 3 — NETS, replaying the placement stream with a ring of recent
  // instances: each net connects a driver to 1-3 sinks placed nearby in
  // stream order (locality without any spatial index).
  const std::vector<MasterPins> pins = classifyPins(lay.pool);
  out::netsBegin(def, numNets);
  {
    Lcg rng{spec.seed * 6364136223846793005ULL + 11};
    std::vector<Placed> ring;
    ring.reserve(64);
    std::size_t ringAt = 0;
    std::size_t netsEmitted = 0;
    std::size_t ioAt = 0;
    placeLoop(spec, lay, [&](const Placed& p) {
      while (netsEmitted < numNets &&
             (p.idx + 1) * numNets >= (netsEmitted + 1) * cells) {
        out::netBegin(def, "net_" + std::to_string(netsEmitted));
        const Master* dm = lay.pool[p.masterIdx];
        out::netInstTerm(def, instName(p.idx),
                         dm->pins[pins[p.masterIdx].driver].name);
        const std::size_t fanout =
            std::min<std::size_t>(1 + rng.next() % 3, ring.size());
        for (std::size_t s = 0; s < fanout; ++s) {
          const Placed& sink = ring[rng.next() % ring.size()];
          const MasterPins& mp = pins[sink.masterIdx];
          const int pinIdx = mp.sinks[rng.next() % mp.sinks.size()];
          out::netInstTerm(def, instName(sink.idx),
                           lay.pool[sink.masterIdx]->pins[pinIdx].name);
        }
        while (ioAt < ioOfNet.size() && ioOfNet[ioAt].first == netsEmitted) {
          out::netIoTerm(def, "io_" + std::to_string(ioOfNet[ioAt].second));
          ++ioAt;
        }
        out::netEnd(def);
        ++netsEmitted;
      }
      if (ring.size() < 64) {
        ring.push_back(p);
      } else {
        ring[ringAt] = p;
        ringAt = (ringAt + 1) % 64;
      }
    });
    // cells >= 1 and the loop condition hits numNets exactly at the last
    // placement, so every net is emitted by here.
  }
  out::netsEnd(def);
  out::end(def);

  HugeCounts counts;
  counts.cells = cells;
  counts.nets = numNets;
  counts.ioPins = numIoPins;
  counts.rows = rowsUsed;
  return counts;
}

}  // namespace pao::benchgen
