#include "benchgen/testcase.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <random>

namespace pao::benchgen {

using db::Design;
using db::Instance;
using db::Master;
using geom::Coord;
using geom::Rect;

namespace {

/// Spatial bucket of available sink pins for locality-biased net building.
struct SinkPool {
  struct Entry {
    int inst;
    int pin;
  };
  Coord bucket = 40000;  // ~20 um
  std::map<std::pair<Coord, Coord>, std::vector<Entry>> buckets;

  void add(const geom::Point& p, Entry e) {
    buckets[{p.x / bucket, p.y / bucket}].push_back(e);
  }
  /// Pops up to `want` entries near `p` (same bucket ring, then anywhere).
  std::vector<Entry> take(const geom::Point& p, int want,
                          std::mt19937& rng) {
    std::vector<Entry> out;
    const Coord bx = p.x / bucket;
    const Coord by = p.y / bucket;
    for (int ring = 0; ring <= 2 && static_cast<int>(out.size()) < want;
         ++ring) {
      for (Coord dx = -ring; dx <= ring; ++dx) {
        for (Coord dy = -ring; dy <= ring; ++dy) {
          if (std::max(std::abs(dx), std::abs(dy)) != ring) continue;
          auto it = buckets.find({bx + dx, by + dy});
          if (it == buckets.end()) continue;
          auto& v = it->second;
          while (!v.empty() && static_cast<int>(out.size()) < want) {
            const std::size_t pick = rng() % v.size();
            out.push_back(v[pick]);
            v[pick] = v.back();
            v.pop_back();
          }
          if (v.empty()) buckets.erase(it);
        }
      }
    }
    return out;
  }
};

}  // namespace

Testcase generate(const TestcaseSpec& spec, double scale) {
  Testcase tc;
  tc.spec = spec;
  const NodeParams node = nodeParams(spec.node);
  tc.tech = makeTech(node);

  LibParams lp;
  lp.node = node;
  lp.siteWidth = spec.siteWidth;
  lp.numCombMasters = spec.numCombMasters;
  lp.withMacro = spec.numMacros > 0;
  lp.withMultiHeight = spec.multiHeightFraction > 0;
  tc.lib = makeLibrary(lp, *tc.tech);

  auto design = std::make_unique<Design>();
  design->name = spec.name;
  design->tech = tc.tech.get();
  design->lib = tc.lib.get();

  std::mt19937 rng(spec.seed);
  const std::size_t numCells =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   static_cast<double>(spec.numCells) * scale));
  const std::size_t numNets = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(spec.numNets) * scale));
  const int numIoPins =
      static_cast<int>(static_cast<double>(spec.numIoPins) * scale);

  // Collect placeable core masters (weighted toward small cells) + fillers.
  std::vector<const Master*> coreMasters;
  std::vector<const Master*> fillers;
  const Master* macro = nullptr;
  const Master* multiHeight = nullptr;
  for (const auto& mp : tc.lib->masters()) {
    if (mp->name == "DFFHX1") {
      multiHeight = mp.get();
      continue;  // placed via multiHeightFraction, not the general pool
    }
    switch (mp->cls) {
      case db::MasterClass::kCore:
        coreMasters.push_back(mp.get());
        if (mp->width <= spec.siteWidth * 3) {
          coreMasters.push_back(mp.get());  // double weight for small cells
        }
        break;
      case db::MasterClass::kFiller:
        fillers.push_back(mp.get());
        break;
      case db::MasterClass::kBlock:
        macro = mp.get();
        break;
      default:
        break;
    }
  }

  // Die sizing: rows^2 * height / siteWidth ~ total cell sites / utilization.
  double avgSites = 0;
  for (const Master* m : coreMasters) {
    avgSites += static_cast<double>(m->width) / spec.siteWidth;
  }
  avgSites /= static_cast<double>(coreMasters.size());
  const Coord height = cellHeight(node);
  const double totalSites =
      static_cast<double>(numCells) * avgSites / spec.utilization;
  int numRows = std::max(
      2, static_cast<int>(std::sqrt(totalSites * spec.siteWidth / height)));
  const Coord rowSites = std::max<Coord>(
      8, static_cast<Coord>(totalSites / numRows) + 1);
  const Coord dieW = rowSites * spec.siteWidth;
  const Coord dieH = numRows * height;
  design->dieArea = {0, 0, dieW, dieH};

  // Track patterns: both axes on every routing layer. All patterns start at
  // half the BASE (M1) pitch so coarser upper-layer tracks remain a subset
  // of the base grid and stacked vias land on shared intersections.
  for (const db::Layer& l : tc.tech->layers()) {
    if (l.type != db::LayerType::kRouting) continue;
    db::TrackPattern ty;
    ty.layer = l.index;
    ty.axis = db::Dir::kHorizontal;
    ty.start = node.m1Pitch / 2;
    ty.step = l.pitch;
    ty.count = static_cast<int>((dieH - ty.start) / l.pitch);
    design->trackPatterns.push_back(ty);
    db::TrackPattern tx = ty;
    tx.axis = db::Dir::kVertical;
    tx.count = static_cast<int>((dieW - tx.start) / l.pitch);
    design->trackPatterns.push_back(tx);
  }

  // Macros occupy a block in the top-right corner.
  std::vector<Rect> blocked;
  if (macro != nullptr) {
    Coord mx = dieW;
    Coord my = dieH;
    for (int i = 0; i < spec.numMacros; ++i) {
      mx -= macro->width + spec.siteWidth * 4;
      if (mx < dieW / 2) {
        mx = dieW - macro->width - spec.siteWidth * 4;
        my -= macro->height + height;
      }
      if (my < dieH / 2) break;
      Instance inst;
      inst.name = "macro_" + std::to_string(i);
      inst.master = macro;
      inst.origin = {mx, my - macro->height};
      inst.orient = geom::Orient::R0;
      // Placement keepout halo around the macro (as placers enforce), so
      // standard-cell pin access never reaches into the macro blockage.
      blocked.push_back(inst.bbox().bloat(node.m1Pitch * 2));
      design->instances.push_back(std::move(inst));
    }
  }

  // Row-based placement with random gaps; a gap may receive a filler (the
  // cluster then continues through it). Double-height cells reserve their
  // span in the row above.
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::size_t placed = 0;
  int instId = 0;
  std::vector<std::vector<std::pair<Coord, Coord>>> reserved(numRows + 1);
  const auto isReserved = [&](int row, Coord x1, Coord x2) {
    if (row >= static_cast<int>(reserved.size())) return false;
    for (const auto& [a, b] : reserved[row]) {
      if (x1 < b && a < x2) return true;
    }
    return false;
  };
  for (int r = 0; r < numRows && placed < numCells; ++r) {
    const Coord y = static_cast<Coord>(r) * height;
    design->rows.push_back({"ROW_" + std::to_string(r), "core",
                            {0, y},
                            r % 2 == 0 ? geom::Orient::R0 : geom::Orient::MX,
                            static_cast<int>(rowSites), spec.siteWidth,
                            height});
    Coord x = 0;
    while (x < dieW && placed < numCells) {
      if (uni(rng) > spec.utilization) {
        // Leave a gap of 1-3 sites, sometimes filled with a filler cell.
        const Coord gapSites = 1 + static_cast<Coord>(rng() % 3);
        if (!fillers.empty() && uni(rng) < 0.4) {
          const Master* f = fillers[rng() % fillers.size()];
          if (x + f->width <= dieW && !isReserved(r, x, x + f->width)) {
            Instance inst;
            inst.name = "fill_" + std::to_string(instId++);
            inst.master = f;
            inst.origin = {x, y};
            inst.orient =
                r % 2 == 0 ? geom::Orient::R0 : geom::Orient::MX;
            design->instances.push_back(std::move(inst));
            x += f->width;
            continue;
          }
        }
        x += gapSites * spec.siteWidth;
        continue;
      }
      const Master* m = coreMasters[rng() % coreMasters.size()];
      bool isMulti = false;
      if (multiHeight != nullptr && r + 1 < numRows &&
          uni(rng) < spec.multiHeightFraction &&
          !isReserved(r + 1, x, x + multiHeight->width)) {
        m = multiHeight;
        isMulti = true;
      }
      if (x + m->width > dieW) break;
      if (isReserved(r, x, x + m->width)) {
        x += spec.siteWidth;
        continue;
      }
      const Rect bbox{x, y, x + m->width,
                      y + (isMulti ? 2 * height : height)};
      const bool hitsMacro =
          std::any_of(blocked.begin(), blocked.end(),
                      [&](const Rect& b) { return b.overlaps(bbox); });
      if (hitsMacro) {
        x += spec.siteWidth * 4;
        continue;
      }
      if (isMulti) reserved[r + 1].emplace_back(x, x + m->width);
      Instance inst;
      inst.name = "inst_" + std::to_string(instId++);
      inst.master = m;
      inst.origin = {x, y};
      // Row orientation with occasional mirroring about y. Double-height
      // cells keep their internal rail structure: R0/MY only.
      const bool flipRow = r % 2 != 0 && !isMulti;
      const bool mirror = uni(rng) < 0.35;
      inst.orient = flipRow ? (mirror ? geom::Orient::R180 : geom::Orient::MX)
                            : (mirror ? geom::Orient::MY : geom::Orient::R0);
      design->instances.push_back(std::move(inst));
      x += m->width;
      ++placed;
    }
  }
  design->buildInstanceIndex();

  // Netlist: drivers are output pins (Z/Q), sinks are inputs; nets connect a
  // driver to 1-4 nearby sinks.
  std::vector<std::pair<int, int>> drivers;
  SinkPool sinks;
  for (int i = 0; i < static_cast<int>(design->instances.size()); ++i) {
    const Instance& inst = design->instances[i];
    if (inst.master->cls != db::MasterClass::kCore &&
        inst.master->cls != db::MasterClass::kBlock) {
      continue;
    }
    for (int p = 0; p < static_cast<int>(inst.master->pins.size()); ++p) {
      const db::Pin& pin = inst.master->pins[p];
      if (pin.use != db::PinUse::kSignal && pin.use != db::PinUse::kClock) {
        continue;
      }
      if (pin.name == "Z" || pin.name == "Q" || pin.name[0] == 'P') {
        drivers.emplace_back(i, p);
      } else {
        sinks.add(inst.origin, {i, p});
      }
    }
  }
  std::shuffle(drivers.begin(), drivers.end(), rng);

  std::size_t netCount = 0;
  for (const auto& [di, dp] : drivers) {
    if (netCount >= numNets) break;
    const int fanout = 1 + static_cast<int>(rng() % 4);
    const std::vector<SinkPool::Entry> picked =
        sinks.take(design->instances[di].origin, fanout, rng);
    if (picked.empty()) continue;
    db::Net net;
    net.name = "net_" + std::to_string(netCount++);
    net.terms.push_back({di, dp, -1});
    for (const SinkPool::Entry& e : picked) {
      net.terms.push_back({e.inst, e.pin, -1});
    }
    design->nets.push_back(std::move(net));
  }

  // IO pins on the die boundary (M4), appended to random nets.
  if (numIoPins > 0 && !design->nets.empty()) {
    const db::Layer* m4 = tc.tech->findLayer("M4");
    const Coord w = m4->width;
    for (int i = 0; i < numIoPins; ++i) {
      db::IoPin pin;
      pin.name = "io_" + std::to_string(i);
      pin.layer = m4->index;
      const int side = i % 4;
      const Coord t = static_cast<Coord>(rng() % std::max<Coord>(1, dieW));
      const Coord tv = static_cast<Coord>(rng() % std::max<Coord>(1, dieH));
      switch (side) {
        case 0: pin.rect = {t, 0, t + 4 * w, 2 * w}; break;
        case 1: pin.rect = {t, dieH - 2 * w, t + 4 * w, dieH}; break;
        case 2: pin.rect = {0, tv, 2 * w, tv + 4 * w}; break;
        default: pin.rect = {dieW - 2 * w, tv, dieW, tv + 4 * w}; break;
      }
      const int ioIdx = static_cast<int>(design->ioPins.size());
      design->ioPins.push_back(std::move(pin));
      db::Net& net = design->nets[rng() % design->nets.size()];
      net.terms.push_back({-1, -1, ioIdx});
    }
  }

  tc.design = std::move(design);
  return tc;
}

std::vector<TestcaseSpec> ispd18Suite() {
  // Table I statistics; siteWidth choices steer #unique instances toward the
  // paper's per-testcase counts (see DESIGN.md §3).
  std::vector<TestcaseSpec> suite;
  const auto add = [&](std::string name, Node node, std::size_t cells,
                       int macros, std::size_t nets, int ios, Coord site,
                       int masters, unsigned seed, double w, double h) {
    TestcaseSpec s;
    s.name = std::move(name);
    s.node = node;
    s.numCells = cells;
    s.numMacros = macros;
    s.numNets = nets;
    s.numIoPins = ios;
    s.siteWidth = site;
    s.numCombMasters = masters;
    s.seed = seed;
    s.paperDieWmm = w;
    s.paperDieHmm = h;
    suite.push_back(std::move(s));
  };
  //    name            node       #cells macros  #nets  #io  site masters seed  die
  add("ispd18_test1", Node::k45, 8879, 0, 3153, 0, 190, 8, 11, 0.20, 0.19);
  add("ispd18_test2", Node::k45, 35913, 0, 36834, 1211, 190, 10, 12, 0.65, 0.57);
  add("ispd18_test3", Node::k45, 35973, 4, 36700, 1211, 190, 10, 13, 0.99, 0.70);
  add("ispd18_test4", Node::k32, 72094, 0, 72401, 1211, 96, 16, 14, 0.89, 0.61);
  add("ispd18_test5", Node::k32, 71954, 0, 72394, 1211, 96, 16, 15, 0.93, 0.92);
  add("ispd18_test6", Node::k32, 107919, 0, 107701, 1211, 96, 17, 16, 0.86, 0.53);
  add("ispd18_test7", Node::k32, 179865, 16, 179863, 1211, 280, 8, 17, 1.36, 1.33);
  add("ispd18_test8", Node::k32, 191987, 16, 179863, 1211, 140, 10, 18, 1.36, 1.33);
  add("ispd18_test9", Node::k32, 192911, 0, 178857, 1211, 140, 10, 19, 0.91, 0.78);
  add("ispd18_test10", Node::k32, 290386, 0, 182000, 1211, 140, 10, 20, 0.91, 0.87);
  return suite;
}

TestcaseSpec mixedSpec() {
  TestcaseSpec s;
  s.name = "mixed";
  s.node = Node::k45;
  s.numCells = 6000;
  s.numMacros = 2;
  s.numNets = 5500;
  s.numIoPins = 64;
  s.siteWidth = 190;
  s.numCombMasters = 10;
  s.multiHeightFraction = 0.08;
  s.seed = 7;
  return s;
}

TestcaseSpec aes14Spec() {
  TestcaseSpec s;
  s.name = "aes_14nm";
  s.node = Node::k14;
  s.numCells = 20000;
  s.numNets = 17000;
  s.numIoPins = 256;
  s.siteWidth = 48;
  s.numCombMasters = 16;
  // Multi-height cells appear in advanced FinFET nodes (the paper's
  // future-work item exercised here).
  s.multiHeightFraction = 0.05;
  s.seed = 42;
  return s;
}

}  // namespace pao::benchgen
