// Synthetic testcase generation: row-based placements, track patterns,
// locality-biased netlists and boundary IO pins, with presets dimensioned
// after Table I of the paper (the ISPD-2018 initial detailed routing
// benchmark suite) plus the 14nm AES-like case of Experiment 3.
//
// The real contest tarballs are not redistributable here; see DESIGN.md §3
// for why these synthetic analogues preserve the behaviours under test.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "benchgen/lib_gen.hpp"
#include "db/design.hpp"

namespace pao::benchgen {

struct TestcaseSpec {
  std::string name;
  Node node = Node::k45;
  std::size_t numCells = 1000;  ///< standard cells (Table I "#Standard cell")
  int numMacros = 0;
  std::size_t numNets = 1000;
  int numIoPins = 0;
  /// Site width in DBU; its ratio to the track pitches steers the number of
  /// distinct track-offset classes and hence #unique instances.
  geom::Coord siteWidth = 380;
  int numCombMasters = 14;
  double utilization = 0.85;
  /// Fraction of placements drawn from the double-height master (requires
  /// the row above to be free at that span).
  double multiHeightFraction = 0.0;
  unsigned seed = 1;
  /// Table I die size (mm), for reporting only; the generated die is sized
  /// from the cell area and utilization.
  double paperDieWmm = 0;
  double paperDieHmm = 0;
};

struct Testcase {
  TestcaseSpec spec;
  std::unique_ptr<db::Tech> tech;
  std::unique_ptr<db::Library> lib;
  std::unique_ptr<db::Design> design;
};

/// Generates a testcase; `scale` in (0,1] shrinks cell/net/IO counts
/// proportionally (unique-instance structure is preserved) so the full
/// experiment suite stays tractable on small machines.
Testcase generate(const TestcaseSpec& spec, double scale = 1.0);

/// The ten ispd18_test* analogues (Table I statistics).
std::vector<TestcaseSpec> ispd18Suite();
/// The 20K-instance 14nm AES-like case (Experiment 3's preliminary study).
TestcaseSpec aes14Spec();
/// A mid-size mixed-workload case (standard cells + macros + multi-height
/// rows) stressing every batch-check shard kind at once; used by the
/// parallel-DRC micro-benchmarks and the determinism regression tests.
TestcaseSpec mixedSpec();

}  // namespace pao::benchgen
