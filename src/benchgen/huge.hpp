// The "huge" benchgen preset (ROADMAP item 3): million-to-ten-million
// instance designs for the 100x-scale ingest work. Unlike generate(), the
// design is never materialized — the DEF text streams straight to an
// ostream from a deterministic placement loop that is re-run once per file
// section, so generating a 10M-instance case costs O(ring buffer) memory.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <string>

#include "benchgen/lib_gen.hpp"
#include "db/lib.hpp"
#include "db/tech.hpp"

namespace pao::benchgen {

struct HugeSpec {
  std::string name = "pao_huge";
  Node node = Node::k45;
  std::size_t numCells = 1'500'000;
  std::size_t numNets = 1'200'000;
  std::size_t numIoPins = 2000;
  geom::Coord siteWidth = 380;
  double utilization = 0.85;
  int numCombMasters = 14;
  unsigned seed = 17;
};

/// The default huge preset (~1.5M cells, ~150MB of DEF at scale 1).
HugeSpec hugeSpec();

/// What writeHugeDef actually emitted (cells can fall short of the spec by
/// a few when the last row fills up; everything else is exact).
struct HugeCounts {
  std::size_t cells = 0;
  std::size_t nets = 0;
  std::size_t ioPins = 0;
  int rows = 0;
};

/// The tech and library a huge design references; small and materialized
/// normally (same generators as the Table-I presets).
struct HugeTechLib {
  std::unique_ptr<db::Tech> tech;
  std::unique_ptr<db::Library> lib;
};
HugeTechLib makeHugeTechLib(const HugeSpec& spec);

/// Streams the DEF of `spec` scaled by `scale` (cells/nets/IO counts scale
/// proportionally) to `def`. Deterministic: the same spec and scale produce
/// byte-identical text on every run. The text is emitted through the same
/// lefdef::defout helpers writeDef() uses, so parsing it and re-writing
/// with writeDef() is a byte-stable fixpoint (locked by
/// test_properties.cpp).
HugeCounts writeHugeDef(const HugeSpec& spec, double scale,
                        const db::Tech& tech, const db::Library& lib,
                        std::ostream& def);

}  // namespace pao::benchgen
