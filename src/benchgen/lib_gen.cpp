#include "benchgen/lib_gen.hpp"

#include <algorithm>
#include <array>
#include <string>

namespace pao::benchgen {

using db::Master;
using db::Pin;
using db::PinUse;
using geom::Coord;
using geom::Rect;

Coord cellHeight(const NodeParams& node) {
  return node.m1Pitch * node.rowHeightTracks;
}

namespace {

struct CellSpec {
  const char* name;
  int sites;
  int numInputs;   ///< pins A, B, C, D...
  bool hasOutput;  ///< pin Z (or Q)
  bool wideOutput; ///< double-width output bar
  bool lShaped;    ///< output pin gets a horizontal foot
  bool withObs;    ///< internal obstruction
};

/// Master templates; the generator emits a prefix of this list.
constexpr std::array<CellSpec, 18> kCombSpecs{{
    {"INVX1", 2, 1, true, false, false, false},
    {"INVX2", 3, 1, true, true, false, false},
    {"BUFX2", 3, 1, true, false, true, false},
    {"NAND2X1", 3, 2, true, false, false, false},
    {"NOR2X1", 3, 2, true, false, false, false},
    {"NAND2X2", 4, 2, true, true, false, false},
    {"NOR2X2", 4, 2, true, true, false, false},
    {"AND2X1", 4, 2, true, false, true, false},
    {"OR2X1", 4, 2, true, false, true, false},
    {"AOI21X1", 4, 3, true, false, false, false},
    {"OAI21X1", 4, 3, true, false, false, false},
    {"XOR2X1", 5, 2, true, false, true, true},
    {"MUX2X1", 5, 3, true, false, false, true},
    {"AOI22X1", 5, 4, true, false, false, false},
    {"OAI22X1", 5, 4, true, false, false, false},
    {"NAND3X1", 4, 3, true, false, false, false},
    {"NOR3X1", 4, 3, true, false, false, false},
    {"XNOR2X1", 5, 2, true, true, false, true},
}};

}  // namespace

std::unique_ptr<db::Library> makeLibrary(const LibParams& lp,
                                         const db::Tech& tech) {
  auto lib = std::make_unique<db::Library>();
  const NodeParams& node = lp.node;
  const Coord height = cellHeight(node);
  const Coord railH = node.m1Width * 3 / 2;
  // Slightly-wide bars, but never narrower than the EOL width — a pin end
  // below eolWidth would EOL-violate against the rails by construction.
  const Coord pinW =
      std::max(node.m1Width + node.m1Width / 6, node.eolWidth);
  const int m1 = tech.findLayer("M1")->index;
  const int m2 = tech.findLayer("M2")->index;

  const auto addRails = [&](Master& m) {
    Pin& vdd = m.pins.emplace_back();
    vdd.name = "VDD";
    vdd.use = PinUse::kPower;
    vdd.shapes.push_back({m1, Rect(0, height - railH, m.width, height)});
    Pin& vss = m.pins.emplace_back();
    vss.name = "VSS";
    vss.use = PinUse::kGround;
    vss.shapes.push_back({m1, Rect(0, 0, m.width, railH)});
  };

  const Coord yLo = railH + std::max(node.spacing, node.eolSpace);
  const Coord yHi = height - railH - std::max(node.spacing, node.eolSpace);

  const auto barAt = [&](Coord xCenter, Coord w, Coord y1, Coord y2) {
    return Rect(xCenter - w / 2, y1, xCenter + w / 2, y2);
  };

  // Physical width unit: ~2 M1 pitches per logical "site" of the spec,
  // rounded to an integer number of placement sites so instances stay on the
  // site grid regardless of the (testcase-specific) site width.
  const Coord unitSites = std::max<Coord>(
      1, (2 * node.m1Pitch + lp.siteWidth / 2) / lp.siteWidth);
  // Boundary-pin placement is driven by the via reach r = encAlong + cut/2
  // and the min spacing s. With facing bar edges at distances d and d' from
  // the shared cell edge:
  //   - a via can conflict with the neighbor's PIN BAR when d + d' < r + s
  //     (unfixable by pattern choice — must never happen), and
  //   - two same-y vias can conflict when d + d' < 2r + s (fixable by
  //     staggering y — exactly the conflict Step-3/BCA exists to resolve).
  // "Tight" masters use d ~ (r+s)/2 (+10%s) so tight|tight and tight|safe
  // abutments land between the two thresholds; "safe" uses d ~ r + s/2
  // (+10%s) so safe|safe abutments never conflict at all.
  const Coord cutHalf = node.cutSize / 2;
  const Coord reach = node.encAlong + cutHalf;
  const Coord tightEdgeDist = (reach + node.spacing) / 2 + node.spacing / 10;
  const Coord safeEdgeDist = reach + node.spacing / 2 + node.spacing / 10;

  const int numComb = std::clamp(lp.numCombMasters, 4,
                                 static_cast<int>(kCombSpecs.size()));
  for (int ci = 0; ci < numComb; ++ci) {
    const CellSpec& spec = kCombSpecs[ci];
    Master& m = lib->addMaster(spec.name);
    m.cls = db::MasterClass::kCore;
    m.width = lp.siteWidth * unitSites * spec.sites;
    m.height = height;
    addRails(m);

    // Every third master places its boundary pins at the tight distance.
    const Coord edgeDist = (ci % 3 == 2) ? tightEdgeDist : safeEdgeDist;
    const int nPins = spec.numInputs + (spec.hasOutput ? 1 : 0);
    // Bar half-widths per pin (the output may be double width); boundary-pin
    // centers put the bar EDGE at edgeDist from the cell edge.
    const auto halfWidth = [&](int pi) {
      const bool isOutput = spec.hasOutput && pi == nPins - 1;
      return isOutput && spec.wideOutput ? pinW : pinW / 2;
    };
    const Coord leftC = edgeDist + halfWidth(0);
    const Coord rightC = m.width - edgeDist - halfWidth(nPins - 1);
    for (int pi = 0; pi < nPins; ++pi) {
      const bool isOutput = spec.hasOutput && pi == nPins - 1;
      Pin& pin = m.pins.emplace_back();
      pin.name = isOutput ? "Z" : std::string(1, static_cast<char>('A' + pi));
      pin.use = PinUse::kSignal;
      // Spread pin columns between the boundary-pin centers.
      const Coord xc =
          nPins == 1 ? m.width / 2
                     : leftC + (rightC - leftC) * pi / (nPins - 1);
      // Stagger vertical spans so neighboring pins present different track
      // menus to the DP.
      const Coord span = yHi - yLo;
      const Coord y1 = yLo + (pi % 3) * span / 6;
      const Coord y2 = yHi - ((pi + 1) % 3) * span / 6;
      const Coord w = 2 * halfWidth(pi);
      pin.shapes.push_back({m1, barAt(xc, w, y1, y2)});
      if (isOutput && spec.lShaped) {
        // Horizontal foot turning the output into an L: exercises maximal-
        // rectangle decomposition and min-step at the inner corner.
        const Coord footW = m.width / 4;
        pin.shapes.push_back(
            {m1, Rect(xc - footW, y1, xc + w / 2, y1 + pinW)});
      }
    }
    if (spec.withObs && nPins >= 2) {
      // An internal blockage in the gap between the first two pin columns.
      const Coord oc = leftC + (rightC - leftC) / (nPins - 1) / 2;
      m.obstructions.push_back(
          {m1, Rect(oc - pinW / 2, yLo + (yHi - yLo) / 3,
                    oc + pinW / 2, yHi - (yHi - yLo) / 3)});
    }
  }

  if (lp.withSequential) {
    for (const auto& [name, sites] : std::initializer_list<
             std::pair<const char*, int>>{{"DFFX1", 8}, {"DFFX2", 9},
                                          {"LATCHX1", 6}}) {
      Master& m = lib->addMaster(name);
      m.cls = db::MasterClass::kCore;
      m.width = lp.siteWidth * unitSites * sites;
      m.height = height;
      addRails(m);
      const char* pinNames[] = {"D", "CK", "Q"};
      std::array<Coord, 3> pinX{};
      for (int pi = 0; pi < 3; ++pi) {
        Pin& pin = m.pins.emplace_back();
        pin.name = pinNames[pi];
        pin.use = pi == 1 ? PinUse::kClock : PinUse::kSignal;
        const Coord safeC = safeEdgeDist + pinW / 2;
        const Coord xc = safeC + (m.width - 2 * safeC) * (pi + 1) / 4;
        pinX[pi] = xc;
        pin.shapes.push_back(
            {m1, barAt(xc, pinW, yLo + (pi % 2) * node.m1Pitch, yHi)});
      }
      // Sequential cells carry substantial internal routing blockages —
      // narrow M1 strips centered between the pin columns (far enough that
      // even a via enclosure centered off the pin keeps min spacing), and a
      // thin M2 strip across the cell middle that blocks one via landing
      // row without wide-metal spacing side effects.
      // Strips stay at default wire-ish width so only the default (not the
      // wide-metal) spacing row applies between them and pin-access vias.
      for (const Coord oc : {(pinX[0] + pinX[1]) / 2,
                             (pinX[1] + pinX[2]) / 2}) {
        m.obstructions.push_back(
            {m1, Rect(oc - pinW / 2, yLo, oc + pinW / 2, yHi)});
      }
      m.obstructions.push_back(
          {m2, Rect(m.width / 4, height / 2 - node.m1Width,
                    m.width * 3 / 4, height / 2 + node.m1Width)});
    }
  }

  if (lp.withMultiHeight) {
    // Double-height DFF: rails at bottom/middle/top (VSS, VDD, VSS), one
    // pin column per quarter, bars confined to one of the two row halves so
    // each pin faces a normal track menu.
    Master& m = lib->addMaster("DFFHX1");
    m.cls = db::MasterClass::kCore;
    m.width = lp.siteWidth * unitSites * 6;
    m.height = 2 * height;
    Pin& vssLo = m.pins.emplace_back();
    vssLo.name = "VSS";
    vssLo.use = PinUse::kGround;
    vssLo.shapes.push_back({m1, Rect(0, 0, m.width, railH)});
    vssLo.shapes.push_back(
        {m1, Rect(0, m.height - railH, m.width, m.height)});
    Pin& vdd = m.pins.emplace_back();
    vdd.name = "VDD";
    vdd.use = PinUse::kPower;
    vdd.shapes.push_back(
        {m1, Rect(0, height - railH / 2, m.width, height + railH / 2)});

    const char* names[] = {"D", "CK", "Q", "QN"};
    const Coord safeC = safeEdgeDist + pinW / 2;
    for (int pi = 0; pi < 4; ++pi) {
      Pin& pin = m.pins.emplace_back();
      pin.name = names[pi];
      pin.use = pi == 1 ? PinUse::kClock : PinUse::kSignal;
      const Coord xc = safeC + (m.width - 2 * safeC) * pi / 3;
      // D/CK in the lower row, Q/QN in the upper.
      const Coord rowBase = pi < 2 ? 0 : height;
      const Coord y1 = rowBase + yLo + (pi % 2) * node.m1Pitch;
      const Coord y2 = rowBase + yHi;
      pin.shapes.push_back({m1, barAt(xc, pinW, y1, y2)});
    }
    m.obstructions.push_back(
        {m1, Rect(m.width / 2 - pinW / 2, yLo, m.width / 2 + pinW / 2,
                  2 * height - yLo)});
  }

  if (lp.withFillers) {
    for (const auto& [name, sites] : std::initializer_list<
             std::pair<const char*, int>>{{"FILL1", 1}, {"FILL2", 2},
                                          {"FILL4", 4}}) {
      Master& m = lib->addMaster(name);
      m.cls = db::MasterClass::kFiller;
      m.width = lp.siteWidth * sites;
      m.height = height;
      addRails(m);
    }
  }

  if (lp.withMacro) {
    Master& m = lib->addMaster("MACRO_RAM");
    m.cls = db::MasterClass::kBlock;
    m.width = lp.siteWidth * 60;
    m.height = height * 8;
    const int m3 = tech.findLayer("M3")->index;
    // Pins along the macro's bottom edge on M3.
    for (int pi = 0; pi < 8; ++pi) {
      Pin& pin = m.pins.emplace_back();
      pin.name = "P" + std::to_string(pi);
      pin.use = PinUse::kSignal;
      const Coord xc = m.width * (pi + 1) / 9;
      pin.shapes.push_back(
          {m3, barAt(xc, 2 * pinW, node.spacing, node.m1Pitch * 3)});
    }
    // The body blocks M1-M3.
    const Coord margin = node.m1Pitch * 4;
    for (const int li : {m1, m2, m3}) {
      m.obstructions.push_back(
          {li, Rect(0, margin, m.width, m.height)});
    }
  }
  return lib;
}

}  // namespace pao::benchgen
