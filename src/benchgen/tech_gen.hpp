// Synthetic technology generation: 45nm-, 32nm- and 14nm-like nodes with 9
// routing layers, cut layers and default vias, dimensioned so the design-rule
// interactions the paper depends on actually occur (wide-pin min-step at
// on-track points, EOL pressure between abutting cells' vias, via-in-pin
// enclosure alignment).
#pragma once

#include <memory>

#include "db/tech.hpp"

namespace pao::benchgen {

enum class Node { k45, k32, k14 };

/// Geometry knobs of a synthetic node, all in DBU (2000 DBU = 1 um).
struct NodeParams {
  Node node = Node::k45;
  geom::Coord m1Pitch = 380;
  geom::Coord m1Width = 120;
  geom::Coord spacing = 130;       ///< default min spacing
  geom::Coord wideSpacing = 240;   ///< spacing for wide (>2x width) shapes
  geom::Coord minStep = 110;       ///< min step length (kept below the wire width, as real nodes do)
  geom::Coord eolSpace = 150;
  geom::Coord eolWidth = 140;
  geom::Coord eolWithin = 60;
  geom::Coord cutSize = 140;
  geom::Coord encAlong = 130;      ///< via enclosure overhang along pref dir
  geom::Coord encAcross = 10;      ///< overhang across pref dir
  geom::Coord minAreaDbu2 = 80000;  ///< min metal area in DBU^2
  int rowHeightTracks = 9;         ///< cell height in M2 pitches
  bool m1Vertical = false;         ///< 14nm-like: unidirectional vertical M1
};

NodeParams nodeParams(Node node);

/// Builds a 9-routing-layer technology (M1..M9 with V1..V8 cut layers and a
/// default via per cut layer) from the node parameters.
std::unique_ptr<db::Tech> makeTech(const NodeParams& params);

}  // namespace pao::benchgen
