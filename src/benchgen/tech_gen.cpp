#include "benchgen/tech_gen.hpp"

#include <string>

namespace pao::benchgen {

using db::Dir;
using db::Layer;
using db::LayerType;
using db::Tech;
using geom::Coord;
using geom::Rect;

NodeParams nodeParams(Node node) {
  NodeParams p;
  p.node = node;
  switch (node) {
    case Node::k45:
      // Defaults in the struct are the 45nm-like values.
      break;
    case Node::k32:
      p.m1Pitch = 280;
      p.m1Width = 100;
      p.spacing = 100;
      p.wideSpacing = 200;
      p.minStep = 90;
      p.eolSpace = 120;
      p.eolWidth = 120;
      p.eolWithin = 50;
      p.cutSize = 100;
      p.encAlong = 100;
      p.encAcross = 10;
      p.minAreaDbu2 = 40000;
      p.rowHeightTracks = 9;
      break;
    case Node::k14:
      p.m1Pitch = 160;
      p.m1Width = 64;
      p.spacing = 64;
      p.wideSpacing = 128;
      p.minStep = 60;
      p.eolSpace = 80;
      p.eolWidth = 70;
      p.eolWithin = 30;
      p.cutSize = 64;
      p.encAlong = 70;
      p.encAcross = 6;
      p.minAreaDbu2 = 12800;
      p.rowHeightTracks = 10;
      p.m1Vertical = true;
      break;
  }
  return p;
}

std::unique_ptr<db::Tech> makeTech(const NodeParams& p) {
  auto tech = std::make_unique<Tech>();
  tech->dbuPerMicron = 2000;
  switch (p.node) {
    case Node::k45: tech->name = "synth45"; break;
    case Node::k32: tech->name = "synth32"; break;
    case Node::k14: tech->name = "synth14"; break;
  }

  constexpr int kNumMetal = 9;
  for (int m = 1; m <= kNumMetal; ++m) {
    if (m > 1) {
      Layer& cut = tech->addLayer("V" + std::to_string(m - 1),
                                  LayerType::kCut);
      cut.cutSpacing = p.cutSize;  // cut spacing ~ cut size in these nodes
    }
    Layer& metal =
        tech->addLayer("M" + std::to_string(m), LayerType::kRouting);
    // Alternate preferred directions; upper layers (M7+) are coarser.
    const bool odd = (m % 2) == 1;
    const bool vertical = p.m1Vertical ? odd : !odd;
    metal.dir = vertical ? Dir::kVertical : Dir::kHorizontal;
    const Coord scale = m >= 7 ? 2 : 1;
    metal.pitch = p.m1Pitch * scale;
    metal.width = p.m1Width * scale;
    metal.minArea = p.minAreaDbu2 * scale;
    metal.spacingTable = {
        {0, 0, p.spacing * scale},
        {2 * metal.width, 2 * metal.width, p.wideSpacing * scale},
        {6 * metal.width, 6 * metal.width, 2 * p.wideSpacing * scale},
    };
    metal.minStep = db::MinStepRule{p.minStep * scale, 1};
    metal.eol = db::EolRule{p.eolSpace * scale, p.eolWidth * scale,
                            p.eolWithin * scale};
  }

  // One default via per cut layer. The bottom enclosure overhangs along the
  // bottom layer's preferred direction; the top enclosure along the top's.
  for (int m = 1; m < kNumMetal; ++m) {
    const Layer* bot = tech->findLayer("M" + std::to_string(m));
    const Layer* cut = tech->findLayer("V" + std::to_string(m));
    const Layer* top = tech->findLayer("M" + std::to_string(m + 1));
    const Coord scale = (m + 1) >= 7 ? 2 : 1;
    const Coord half = p.cutSize * scale / 2;
    const Coord along = p.encAlong * scale;
    const Coord across = p.encAcross * scale;

    db::ViaDef& via = tech->addViaDef("V" + std::to_string(m) + "_0");
    via.isDefault = true;
    via.botLayer = bot->index;
    via.cutLayer = cut->index;
    via.topLayer = top->index;
    via.cut = Rect(-half, -half, half, half);
    const auto enclosure = [&](const Layer& l) {
      return l.dir == Dir::kHorizontal
                 ? Rect(-half - along, -half - across, half + along,
                        half + across)
                 : Rect(-half - across, -half - along, half + across,
                        half + along);
    };
    via.botEnc = enclosure(*bot);
    via.topEnc = enclosure(*top);

    // A rotated alternate via (enclosure overhang across the preferred
    // direction) gives the generator a fallback when the default violates.
    // `via` stays valid across this addViaDef: Tech backs via defs with a
    // deque, so add* references are stable.
    db::ViaDef& alt = tech->addViaDef("V" + std::to_string(m) + "_1");
    alt.isDefault = false;
    alt.botLayer = bot->index;
    alt.cutLayer = cut->index;
    alt.topLayer = top->index;
    alt.cut = Rect(-half, -half, half, half);
    const auto rotated = [&](const Layer& l) {
      return l.dir == Dir::kHorizontal
                 ? Rect(-half - across, -half - along, half + across,
                        half + along)
                 : Rect(-half - along, -half - across, half + along,
                        half + across);
    };
    alt.botEnc = rotated(*bot);
    alt.topEnc = enclosure(*top);
  }
  return tech;
}

}  // namespace pao::benchgen
