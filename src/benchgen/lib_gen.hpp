// Synthetic standard-cell library generation. Cells follow the structural
// conventions of the ISPD-2018 libraries: M1 power/ground rails at the row
// edges, vertical M1 signal-pin bars between them (some L-shaped, some
// double-width), obstructions in sequential cells, and pins placed near the
// cell boundary so that abutting instances genuinely compete for access —
// the condition Step 3's boundary-conflict handling exists for.
#pragma once

#include <memory>

#include "benchgen/tech_gen.hpp"
#include "db/lib.hpp"

namespace pao::benchgen {

struct LibParams {
  NodeParams node;
  geom::Coord siteWidth = 380;
  /// Number of combinational master variants to emit (4..18).
  int numCombMasters = 14;
  bool withSequential = true;
  bool withFillers = true;
  /// Add one BLOCK-class macro master (for the testcases with macros).
  bool withMacro = false;
  /// Add a double-height sequential master (the paper's multi-height
  /// future-work item).
  bool withMultiHeight = false;
};

geom::Coord cellHeight(const NodeParams& node);

std::unique_ptr<db::Library> makeLibrary(const LibParams& params,
                                         const db::Tech& tech);

}  // namespace pao::benchgen
