// pao_serve — long-lived multi-tenant pin access oracle daemon.
//
//   pao_serve (--socket PATH | --port N) [options]
//
// Serves the newline-delimited JSON protocol documented in
// src/serve/protocol.hpp and DESIGN.md "Service architecture" over a
// Unix-domain socket (--socket) or loopback TCP (--port; 0 picks an
// ephemeral port, printed on stderr). Holds one incremental OracleSession
// per loaded tenant; all tenants share one AccessCache.
//
// options:
//   --threads N        oracle worker threads per session (default 1,
//                      0=auto); results are identical for any value
//   --budget N         per-tenant in-flight request budget (default 4);
//                      over-budget connections are stalled, not dropped
//   --max-tenants N    resident design limit (default 64)
//   --deterministic    process requests strictly in arrival order
//   --slow-micros N    slow-request threshold in microseconds (default
//                      250000); slower requests bump
//                      pao.serve.slow_requests and print a rate-limited
//                      stderr line carrying the request id; 0 disables
//   --faults SPEC      arm fault injection (serve.accept / serve.read /
//                      serve.write and the library points; also read from
//                      the PAO_FAULTS env variable)
//
// Stream contract: stdout is never written; status goes to stderr. The
// line "pao_serve: listening on <addr>" signals readiness to scripts.
//
// exit codes:
//   0  clean shutdown (shutdown command, SIGINT or SIGTERM)
//   2  usage error or malformed --faults/PAO_FAULTS spec
//   3  fatal startup error (bad socket path, bind/listen failure)
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "serve/server.hpp"
#include "serve/service.hpp"
#include "util/fault.hpp"

namespace {

pao::serve::Server* g_server = nullptr;

void onSignal(int) {
  if (g_server != nullptr) g_server->stop();  // one eventfd write
}

int usage() {
  std::fprintf(stderr,
               "usage: pao_serve (--socket PATH | --port N) [--threads N]"
               " [--budget N] [--max-tenants N] [--deterministic]"
               " [--slow-micros N] [--faults SPEC]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): first statement of main, no
  // other threads exist yet and nothing ever calls setenv.
  if (const char* spec = std::getenv("PAO_FAULTS")) {
    std::string error;
    if (!pao::util::FaultRegistry::instance().configure(spec, &error)) {
      std::fprintf(stderr, "PAO_FAULTS: %s\n", error.c_str());
      return 2;
    }
  }

  pao::serve::ServiceConfig serviceCfg;
  pao::serve::ServerConfig serverCfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
      serverCfg.unixSocketPath = argv[++i];
    } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      serverCfg.tcpPort = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      serviceCfg.numThreads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc) {
      serviceCfg.tenantBudget = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-tenants") == 0 && i + 1 < argc) {
      serviceCfg.maxTenants =
          static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--deterministic") == 0) {
      serviceCfg.deterministic = true;
    } else if (std::strcmp(argv[i], "--slow-micros") == 0 && i + 1 < argc) {
      serviceCfg.slowRequestMicros = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--faults") == 0 && i + 1 < argc) {
      std::string error;
      if (!pao::util::FaultRegistry::instance().configure(argv[++i],
                                                          &error)) {
        std::fprintf(stderr, "--faults: %s\n", error.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      return usage();
    }
  }
  if (serverCfg.unixSocketPath.empty() == (serverCfg.tcpPort < 0)) {
    return usage();
  }

  pao::serve::Service service(serviceCfg);
  pao::serve::Server server(service, serverCfg);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fatal: %s\n", e.what());
    return 3;
  }

  g_server = &server;
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  if (!serverCfg.unixSocketPath.empty()) {
    std::fprintf(stderr, "pao_serve: listening on %s\n",
                 serverCfg.unixSocketPath.c_str());
  } else {
    std::fprintf(stderr, "pao_serve: listening on 127.0.0.1:%d\n",
                 server.boundPort());
  }

  server.run();
  g_server = nullptr;
  std::fprintf(stderr,
               "pao_serve: stopped (%llu conns, %llu requests, %llu stalls, "
               "%llu dropped)\n",
               static_cast<unsigned long long>(server.stats().accepted),
               static_cast<unsigned long long>(server.stats().requests),
               static_cast<unsigned long long>(server.stats().stalls),
               static_cast<unsigned long long>(server.stats().dropped));
  return 0;
}
