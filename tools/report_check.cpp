// report_check — schema validation for observability artifacts.
//
//   report_check report <file.json>            validate a pao-report/1 doc
//   report_check trace <file.json> [minSpans] [--require-worker]
//                                              validate a Chrome trace
//   report_check compare <a.json> <b.json> [--ignore KEY ...]
//                                              byte-compare two reports
//                                              after stripping timings (and
//                                              any --ignore top-level keys)
//   report_check metrics <file.json>           validate a metrics snapshot
//                                              (report section or pao_serve
//                                              metrics response)
//
// Exit 0 = valid / equal, 1 = invalid / different, 2 = usage or I/O error.
// Diagnostics go to stderr; nothing is written to stdout.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/report.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  report_check report <file.json>\n"
               "  report_check trace <file.json> [minSpans]"
               " [--require-worker]\n"
               "  report_check compare <a.json> <b.json> [--ignore KEY ...]\n"
               "  report_check metrics <file.json>\n");
  return 2;
}

bool slurp(const char* path, std::string& out) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return false;
  }
  std::stringstream ss;
  ss << f.rdbuf();
  out = ss.str();
  return true;
}

bool parseFile(const char* path, pao::obs::Json& out) {
  std::string text;
  if (!slurp(path, text)) return false;
  std::string error;
  const auto doc = pao::obs::Json::parse(text, &error);
  if (!doc) {
    std::fprintf(stderr, "%s: malformed JSON: %s\n", path, error.c_str());
    return false;
  }
  out = *doc;
  return true;
}

int cmdReport(const char* path) {
  pao::obs::Json doc;
  if (!parseFile(path, doc)) return 2;
  std::string error;
  if (!pao::obs::validateReport(doc, &error)) {
    std::fprintf(stderr, "%s: invalid report: %s\n", path, error.c_str());
    return 1;
  }
  std::fprintf(stderr, "%s: valid %s\n", path,
               doc.find("schema")->asString().c_str());
  return 0;
}

int cmdTrace(int argc, char** argv) {
  const char* path = argv[2];
  int minSpans = 1;
  bool requireWorker = false;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--require-worker") == 0) {
      requireWorker = true;
    } else {
      minSpans = std::atoi(argv[i]);
    }
  }
  pao::obs::Json doc;
  if (!parseFile(path, doc)) return 2;
  std::string error;
  if (!pao::obs::validateTrace(doc, minSpans, requireWorker, &error)) {
    std::fprintf(stderr, "%s: invalid trace: %s\n", path, error.c_str());
    return 1;
  }
  std::fprintf(stderr, "%s: valid trace (%zu events)\n", path,
               doc.find("traceEvents")->items().size());
  return 0;
}

/// Top-level keys named with --ignore are dropped before normalization so
/// reports from different producers (e.g. pao_serve vs pao_cli, whose "tool"
/// strings legitimately differ) can still be byte-compared.
pao::obs::Json dropKeys(const pao::obs::Json& doc,
                        const std::vector<std::string>& ignore) {
  if (!doc.isObject() || ignore.empty()) return doc;
  pao::obs::Json out = pao::obs::Json::object();
  for (const auto& [key, value] : doc.members()) {
    if (std::find(ignore.begin(), ignore.end(), key) == ignore.end()) {
      out[key] = value;
    }
  }
  return out;
}

int cmdCompare(const char* pathA, const char* pathB,
               const std::vector<std::string>& ignore) {
  pao::obs::Json a;
  pao::obs::Json b;
  if (!parseFile(pathA, a) || !parseFile(pathB, b)) return 2;
  const std::string na =
      pao::obs::normalizeForCompare(dropKeys(a, ignore)).dump();
  const std::string nb =
      pao::obs::normalizeForCompare(dropKeys(b, ignore)).dump();
  if (na != nb) {
    std::fprintf(stderr,
                 "%s and %s differ beyond timings (%zu vs %zu normalized "
                 "bytes)\n",
                 pathA, pathB, na.size(), nb.size());
    return 1;
  }
  std::fprintf(stderr, "%s and %s are equivalent modulo timings\n", pathA,
               pathB);
  return 0;
}

/// Accepts either a bare Registry snapshot or a pao_serve metrics response
/// (where the snapshot lives under result.metrics.metrics or metrics).
int cmdMetrics(const char* path) {
  pao::obs::Json doc;
  if (!parseFile(path, doc)) return 2;
  const pao::obs::Json* snap = &doc;
  if (const pao::obs::Json* result = doc.find("result")) snap = result;
  if (const pao::obs::Json* inner = snap->find("metrics")) snap = inner;
  if (const pao::obs::Json* inner = snap->find("metrics")) snap = inner;
  std::string error;
  if (!pao::obs::validateMetricsSnapshot(*snap, &error)) {
    std::fprintf(stderr, "%s: invalid metrics snapshot: %s\n", path,
                 error.c_str());
    return 1;
  }
  std::fprintf(stderr, "%s: valid metrics snapshot (%zu counters)\n", path,
               snap->find("counters")->members().size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  if (cmd == "report" && argc == 3) return cmdReport(argv[2]);
  if (cmd == "trace") return cmdTrace(argc, argv);
  if (cmd == "metrics" && argc == 3) return cmdMetrics(argv[2]);
  if (cmd == "compare" && argc >= 4) {
    std::vector<std::string> ignore;
    for (int i = 4; i < argc; ++i) {
      if (std::strcmp(argv[i], "--ignore") == 0 && i + 1 < argc) {
        ignore.push_back(argv[++i]);
      } else {
        return usage();
      }
    }
    return cmdCompare(argv[2], argv[3], ignore);
  }
  return usage();
}
