// report_check — schema validation for observability artifacts.
//
//   report_check report <file.json>            validate a pao-report/1 doc
//   report_check trace <file.json> [minSpans] [--require-worker]
//                                              validate a Chrome trace
//   report_check compare <a.json> <b.json>     byte-compare two reports
//                                              after stripping timings
//
// Exit 0 = valid / equal, 1 = invalid / different, 2 = usage or I/O error.
// Diagnostics go to stderr; nothing is written to stdout.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/report.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  report_check report <file.json>\n"
               "  report_check trace <file.json> [minSpans]"
               " [--require-worker]\n"
               "  report_check compare <a.json> <b.json>\n");
  return 2;
}

bool slurp(const char* path, std::string& out) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return false;
  }
  std::stringstream ss;
  ss << f.rdbuf();
  out = ss.str();
  return true;
}

bool parseFile(const char* path, pao::obs::Json& out) {
  std::string text;
  if (!slurp(path, text)) return false;
  std::string error;
  const auto doc = pao::obs::Json::parse(text, &error);
  if (!doc) {
    std::fprintf(stderr, "%s: malformed JSON: %s\n", path, error.c_str());
    return false;
  }
  out = *doc;
  return true;
}

int cmdReport(const char* path) {
  pao::obs::Json doc;
  if (!parseFile(path, doc)) return 2;
  std::string error;
  if (!pao::obs::validateReport(doc, &error)) {
    std::fprintf(stderr, "%s: invalid report: %s\n", path, error.c_str());
    return 1;
  }
  std::fprintf(stderr, "%s: valid %s\n", path,
               doc.find("schema")->asString().c_str());
  return 0;
}

int cmdTrace(int argc, char** argv) {
  const char* path = argv[2];
  int minSpans = 1;
  bool requireWorker = false;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--require-worker") == 0) {
      requireWorker = true;
    } else {
      minSpans = std::atoi(argv[i]);
    }
  }
  pao::obs::Json doc;
  if (!parseFile(path, doc)) return 2;
  std::string error;
  if (!pao::obs::validateTrace(doc, minSpans, requireWorker, &error)) {
    std::fprintf(stderr, "%s: invalid trace: %s\n", path, error.c_str());
    return 1;
  }
  std::fprintf(stderr, "%s: valid trace (%zu events)\n", path,
               doc.find("traceEvents")->items().size());
  return 0;
}

int cmdCompare(const char* pathA, const char* pathB) {
  pao::obs::Json a;
  pao::obs::Json b;
  if (!parseFile(pathA, a) || !parseFile(pathB, b)) return 2;
  const std::string na = pao::obs::normalizeForCompare(a).dump();
  const std::string nb = pao::obs::normalizeForCompare(b).dump();
  if (na != nb) {
    std::fprintf(stderr,
                 "%s and %s differ beyond timings (%zu vs %zu normalized "
                 "bytes)\n",
                 pathA, pathB, na.size(), nb.size());
    return 1;
  }
  std::fprintf(stderr, "%s and %s are equivalent modulo timings\n", pathA,
               pathB);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  if (cmd == "report" && argc == 3) return cmdReport(argv[2]);
  if (cmd == "trace") return cmdTrace(argc, argv);
  if (cmd == "compare" && argc == 4) return cmdCompare(argv[2], argv[3]);
  return usage();
}
