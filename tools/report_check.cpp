// report_check — schema validation for observability artifacts.
//
//   report_check report <file.json>            validate a pao-report/1 doc
//   report_check trace <file.json> [minSpans] [--require-worker]
//                                              validate a Chrome trace
//   report_check compare <a.json> <b.json> [--ignore KEY ...]
//                                              byte-compare two reports
//                                              after stripping timings (and
//                                              any --ignore top-level keys)
//   report_check metrics <file.json>           validate a metrics snapshot
//                                              (report section or pao_serve
//                                              metrics response)
//   report_check sarif <file.json>             validate a SARIF 2.1.0 log
//                                              (as emitted by pao_lint
//                                              --format sarif)
//   report_check profile <file.json>           validate a pao-report/2 doc
//                                              with a "profile" section and
//                                              print the critical path,
//                                              headroom and per-worker
//                                              utilization
//   report_check ingest <file.json>            validate a pao-report/2 doc
//                                              with an "ingest" section and
//                                              check the throughput and
//                                              peak-RSS figures are positive
//
// Exit 0 = valid / equal, 1 = invalid / different, 2 = usage or I/O error.
// Diagnostics go to stderr; nothing is written to stdout.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/report.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  report_check report <file.json>\n"
               "  report_check trace <file.json> [minSpans]"
               " [--require-worker]\n"
               "  report_check compare <a.json> <b.json> [--ignore KEY ...]\n"
               "  report_check metrics <file.json>\n"
               "  report_check sarif <file.json>\n"
               "  report_check profile <file.json>\n"
               "  report_check ingest <file.json>\n");
  return 2;
}

bool slurp(const char* path, std::string& out) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return false;
  }
  std::stringstream ss;
  ss << f.rdbuf();
  out = ss.str();
  return true;
}

bool parseFile(const char* path, pao::obs::Json& out) {
  std::string text;
  if (!slurp(path, text)) return false;
  std::string error;
  const auto doc = pao::obs::Json::parse(text, &error);
  if (!doc) {
    std::fprintf(stderr, "%s: malformed JSON: %s\n", path, error.c_str());
    return false;
  }
  out = *doc;
  return true;
}

int cmdReport(const char* path) {
  pao::obs::Json doc;
  if (!parseFile(path, doc)) return 2;
  std::string error;
  if (!pao::obs::validateReport(doc, &error)) {
    std::fprintf(stderr, "%s: invalid report: %s\n", path, error.c_str());
    return 1;
  }
  std::fprintf(stderr, "%s: valid %s\n", path,
               doc.find("schema")->asString().c_str());
  return 0;
}

int cmdTrace(int argc, char** argv) {
  const char* path = argv[2];
  int minSpans = 1;
  bool requireWorker = false;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--require-worker") == 0) {
      requireWorker = true;
    } else {
      minSpans = std::atoi(argv[i]);
    }
  }
  pao::obs::Json doc;
  if (!parseFile(path, doc)) return 2;
  std::string error;
  if (!pao::obs::validateTrace(doc, minSpans, requireWorker, &error)) {
    std::fprintf(stderr, "%s: invalid trace: %s\n", path, error.c_str());
    return 1;
  }
  std::fprintf(stderr, "%s: valid trace (%zu events)\n", path,
               doc.find("traceEvents")->items().size());
  return 0;
}

/// Top-level keys named with --ignore are dropped before normalization so
/// reports from different producers (e.g. pao_serve vs pao_cli, whose "tool"
/// strings legitimately differ) can still be byte-compared.
pao::obs::Json dropKeys(const pao::obs::Json& doc,
                        const std::vector<std::string>& ignore) {
  if (!doc.isObject() || ignore.empty()) return doc;
  pao::obs::Json out = pao::obs::Json::object();
  for (const auto& [key, value] : doc.members()) {
    if (std::find(ignore.begin(), ignore.end(), key) == ignore.end()) {
      out[key] = value;
    }
  }
  return out;
}

int cmdCompare(const char* pathA, const char* pathB,
               const std::vector<std::string>& ignore) {
  pao::obs::Json a;
  pao::obs::Json b;
  if (!parseFile(pathA, a) || !parseFile(pathB, b)) return 2;
  const std::string na =
      pao::obs::normalizeForCompare(dropKeys(a, ignore)).dump();
  const std::string nb =
      pao::obs::normalizeForCompare(dropKeys(b, ignore)).dump();
  if (na != nb) {
    std::fprintf(stderr,
                 "%s and %s differ beyond timings (%zu vs %zu normalized "
                 "bytes)\n",
                 pathA, pathB, na.size(), nb.size());
    return 1;
  }
  std::fprintf(stderr, "%s and %s are equivalent modulo timings\n", pathA,
               pathB);
  return 0;
}

/// Accepts either a bare Registry snapshot or a pao_serve metrics response
/// (where the snapshot lives under result.metrics.metrics or metrics).
int cmdMetrics(const char* path) {
  pao::obs::Json doc;
  if (!parseFile(path, doc)) return 2;
  const pao::obs::Json* snap = &doc;
  if (const pao::obs::Json* result = doc.find("result")) snap = result;
  if (const pao::obs::Json* inner = snap->find("metrics")) snap = inner;
  if (const pao::obs::Json* inner = snap->find("metrics")) snap = inner;
  std::string error;
  if (!pao::obs::validateMetricsSnapshot(*snap, &error)) {
    std::fprintf(stderr, "%s: invalid metrics snapshot: %s\n", path,
                 error.c_str());
    return 1;
  }
  std::fprintf(stderr, "%s: valid metrics snapshot (%zu counters)\n", path,
               snap->find("counters")->members().size());
  return 0;
}

/// Structural validation of a SARIF 2.1.0 log: version, a non-empty runs
/// array whose first run names a tool driver with a rule catalog, and every
/// result carrying ruleId, a message text, and at least one physical
/// location with an artifact URI and a positive startLine.
int cmdSarif(const char* path) {
  pao::obs::Json doc;
  if (!parseFile(path, doc)) return 2;
  const auto fail = [path](const char* what) {
    std::fprintf(stderr, "%s: invalid SARIF: %s\n", path, what);
    return 1;
  };
  const pao::obs::Json* version = doc.find("version");
  if (version == nullptr || !version->isString() ||
      version->asString() != "2.1.0") {
    return fail("version must be \"2.1.0\"");
  }
  const pao::obs::Json* runs = doc.find("runs");
  if (runs == nullptr || !runs->isArray() || runs->items().empty()) {
    return fail("runs must be a non-empty array");
  }
  const pao::obs::Json& run = runs->items().front();
  const pao::obs::Json* tool = run.find("tool");
  const pao::obs::Json* driver = tool != nullptr ? tool->find("driver") : nullptr;
  const pao::obs::Json* name = driver != nullptr ? driver->find("name") : nullptr;
  if (name == nullptr || !name->isString() || name->asString().empty()) {
    return fail("runs[0].tool.driver.name missing");
  }
  const pao::obs::Json* rules = driver->find("rules");
  if (rules == nullptr || !rules->isArray() || rules->items().empty()) {
    return fail("runs[0].tool.driver.rules missing or empty");
  }
  for (const pao::obs::Json& rule : rules->items()) {
    const pao::obs::Json* id = rule.find("id");
    if (id == nullptr || !id->isString() || id->asString().empty()) {
      return fail("every rule needs a non-empty id");
    }
  }
  const pao::obs::Json* results = run.find("results");
  if (results == nullptr || !results->isArray()) {
    return fail("runs[0].results must be an array");
  }
  for (const pao::obs::Json& r : results->items()) {
    const pao::obs::Json* ruleId = r.find("ruleId");
    if (ruleId == nullptr || !ruleId->isString() ||
        ruleId->asString().empty()) {
      return fail("every result needs a ruleId");
    }
    const pao::obs::Json* message = r.find("message");
    const pao::obs::Json* text =
        message != nullptr ? message->find("text") : nullptr;
    if (text == nullptr || !text->isString() || text->asString().empty()) {
      return fail("every result needs message.text");
    }
    const pao::obs::Json* locations = r.find("locations");
    if (locations == nullptr || !locations->isArray() ||
        locations->items().empty()) {
      return fail("every result needs locations");
    }
    const pao::obs::Json* phys =
        locations->items().front().find("physicalLocation");
    const pao::obs::Json* artifact =
        phys != nullptr ? phys->find("artifactLocation") : nullptr;
    const pao::obs::Json* uri =
        artifact != nullptr ? artifact->find("uri") : nullptr;
    if (uri == nullptr || !uri->isString() || uri->asString().empty()) {
      return fail("every result needs physicalLocation.artifactLocation.uri");
    }
    const pao::obs::Json* region = phys->find("region");
    const pao::obs::Json* startLine =
        region != nullptr ? region->find("startLine") : nullptr;
    if (startLine == nullptr || !startLine->isNumber() ||
        startLine->asDouble() < 1) {
      return fail("every result needs region.startLine >= 1");
    }
  }
  std::fprintf(stderr, "%s: valid SARIF 2.1.0 (%zu rules, %zu results)\n",
               path, rules->items().size(), results->items().size());
  return 0;
}

/// Validates a pao-report/2 document carrying a "profile" section (the
/// section shape itself is checked by validateReport -> validateProfileSection)
/// and prints the measured critical path and parallelism summary.
int cmdProfile(const char* path) {
  pao::obs::Json doc;
  if (!parseFile(path, doc)) return 2;
  std::string error;
  if (!pao::obs::validateReport(doc, &error)) {
    std::fprintf(stderr, "%s: invalid report: %s\n", path, error.c_str());
    return 1;
  }
  const pao::obs::Json* profile = doc.find("profile");
  if (profile == nullptr) {
    std::fprintf(stderr, "%s: report carries no 'profile' section\n", path);
    return 1;
  }
  const auto num = [&](const char* key) {
    return profile->find(key)->asDouble();
  };
  const pao::obs::Json& cp = *profile->find("criticalPath");
  std::string cpIds;
  for (const pao::obs::Json& id : cp.items()) {
    if (!cpIds.empty()) cpIds += " -> ";
    cpIds += std::to_string(id.asInt());
  }
  std::fprintf(stderr, "%s: valid profile\n", path);
  std::fprintf(stderr, "  jobs              : %.0f over %.0f worker(s), "
                       "%.0f steal(s)\n",
               num("jobs"), num("workers"), num("steals"));
  std::fprintf(stderr, "  wall              : %.0f us\n", num("wallMicros"));
  std::fprintf(stderr, "  total node time   : %.0f us\n",
               num("totalMicros"));
  std::fprintf(stderr, "  critical path     : %.0f us, %zu node(s): %s\n",
               num("criticalPathMicros"), cp.items().size(), cpIds.c_str());
  std::fprintf(stderr, "  headroom          : %.2f\n", num("headroom"));
  std::fprintf(stderr, "  speedup           : %.2f\n", num("speedup"));
  const pao::obs::Json& perWorker = *profile->find("perWorker");
  std::fprintf(stderr, "  %-8s %12s %12s %8s %8s %8s\n", "worker", "busy us",
               "idle us", "util", "nodes", "steals");
  for (const pao::obs::Json& w : perWorker.items()) {
    std::fprintf(stderr, "  %-8lld %12.0f %12.0f %8.2f %8lld %8lld\n",
                 w.find("worker")->asInt(), w.find("busyMicros")->asDouble(),
                 w.find("idleMicros")->asDouble(),
                 w.find("utilization")->asDouble(), w.find("nodes")->asInt(),
                 w.find("steals")->asInt());
  }
  return 0;
}

/// Validates a pao-report/2 document carrying an "ingest" section (shape
/// checked by validateReport) and additionally requires the machine-valued
/// figures — throughput and peak RSS — to be present and positive, which
/// validateReport deliberately does not: those keys are stripped by
/// normalizeForCompare, so this is the one gate that looks at them.
int cmdIngest(const char* path) {
  pao::obs::Json doc;
  if (!parseFile(path, doc)) return 2;
  std::string error;
  if (!pao::obs::validateReport(doc, &error)) {
    std::fprintf(stderr, "%s: invalid report: %s\n", path, error.c_str());
    return 1;
  }
  const pao::obs::Json* ingest = doc.find("ingest");
  if (ingest == nullptr) {
    std::fprintf(stderr, "%s: report carries no 'ingest' section\n", path);
    return 1;
  }
  for (const char* key :
       {"bytes", "components", "mbPerSec", "instsPerSec", "peakRssBytes"}) {
    const pao::obs::Json* v = ingest->find(key);
    if (v == nullptr || !v->isNumber() || v->asDouble() <= 0) {
      std::fprintf(stderr, "%s: ingest.%s missing or not positive\n", path,
                   key);
      return 1;
    }
  }
  const auto num = [&](const char* key) {
    return ingest->find(key)->asDouble();
  };
  std::fprintf(stderr, "%s: valid ingest\n", path);
  std::fprintf(stderr,
               "  input             : %.1f MB DEF in %.0f chunk(s)%s\n",
               num("bytes") / (1024.0 * 1024.0), num("chunks"),
               ingest->find("mapped")->asBool() ? " (mmap)" : "");
  std::fprintf(stderr, "  entities          : %.0f components, %.0f nets\n",
               num("components"), num("nets"));
  std::fprintf(stderr, "  throughput        : %.1f MB/s, %.0f insts/s\n",
               num("mbPerSec"), num("instsPerSec"));
  std::fprintf(stderr, "  peak RSS          : %.1f MB\n",
               num("peakRssBytes") / (1024.0 * 1024.0));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  if (cmd == "report" && argc == 3) return cmdReport(argv[2]);
  if (cmd == "profile" && argc == 3) return cmdProfile(argv[2]);
  if (cmd == "ingest" && argc == 3) return cmdIngest(argv[2]);
  if (cmd == "sarif" && argc == 3) return cmdSarif(argv[2]);
  if (cmd == "trace") return cmdTrace(argc, argv);
  if (cmd == "metrics" && argc == 3) return cmdMetrics(argv[2]);
  if (cmd == "compare" && argc >= 4) {
    std::vector<std::string> ignore;
    for (int i = 4; i < argc; ++i) {
      if (std::strcmp(argv[i], "--ignore") == 0 && i + 1 < argc) {
        ignore.push_back(argv[++i]);
      } else {
        return usage();
      }
    }
    return cmdCompare(argv[2], argv[3], ignore);
  }
  return usage();
}
