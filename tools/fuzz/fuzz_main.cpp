// pao_fuzz — deterministic mutation fuzzer for the LEF/DEF parsers and the
// access-cache reader.
//
//   pao_fuzz <lef|def|cache|stream|all> <corpus-dir> <iterations> [seed]
//
// Each iteration picks a corpus file of the target kind, applies 1-4 seeded
// mutations (truncation, span deletion/duplication, byte flips, dictionary
// token insertion, digit scrambling, cross-file splicing), and checks the
// robustness contract:
//   * recovery-mode parsing (ParseOptions::recover) must never throw — it
//     accumulates diagnostics and returns whatever parsed;
//   * strict-mode parsing may throw lefdef::ParseError and nothing else;
//   * AccessCache::load never throws: it merges entries or rejects the file
//     with a reason;
//   * the `stream` target is differential: parseDefStream with a small
//     randomized chunk size (so mutations land mid-chunk and truncations
//     cut entities at chunk edges) must match the legacy parse on every
//     mutated input — same design fingerprint, same diagnostics in
//     recovery mode, and the same first ParseError in strict mode.
// Any crash, unexpected exception type, or sanitizer trap is a finding.
// Everything is a pure function of (corpus, iterations, seed), so a failing
// run is reproduced by re-running with the same arguments; the iteration
// number of the first violation is printed.
//
// Exit codes: 0 all iterations clean, 1 contract violation, 2 usage/corpus
// error.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "db/design.hpp"
#include "db/fingerprint.hpp"
#include "lefdef/def_parser.hpp"
#include "lefdef/lef_parser.hpp"
#include "lefdef/stream.hpp"
#include "pao/access_cache.hpp"

namespace fs = std::filesystem;

namespace {

using namespace pao;

struct Rng {
  std::uint64_t state;
  /// splitmix64: tiny, well-distributed, and identical everywhere.
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }
  std::size_t below(std::size_t n) {
    return n == 0 ? 0 : static_cast<std::size_t>(next() % n);
  }
};

/// Tokens likely to reach interesting parser states when spliced in.
constexpr const char* kDictionary[] = {
    ";",        "END",      "MACRO",   "PIN",        "LAYER",     "VIA",
    "UNITS",    "DO",       "BY",      "STEP",       "COMPONENTS", "PINS",
    "NETS",     "TRACKS",   "ROW",     "DIEAREA",    "-",          "+",
    "(",        ")",        "PLACED",  "RECT",       "PORT",       "ENTRY",
    "PATTERNS", "PATTERN",  "ORDER",   "AP",         "FINGERPRINT",
    "PAO_ACCESS_CACHE",     "v1",      "v2",         "9999999999999999999",
    "-1",       "1e309",    "0.5",     "nan",        "\"",         "#",
};

std::string mutate(const std::string& base,
                   const std::vector<std::string>& corpus, Rng& rng) {
  std::string s = base;
  const std::size_t ops = 1 + rng.below(4);
  for (std::size_t o = 0; o < ops; ++o) {
    if (s.empty()) s = " ";
    switch (rng.next() % 7) {
      case 0:  // truncate
        s.resize(rng.below(s.size() + 1));
        break;
      case 1: {  // delete a span
        const std::size_t at = rng.below(s.size());
        s.erase(at, 1 + rng.below(64));
        break;
      }
      case 2: {  // duplicate a span
        const std::size_t at = rng.below(s.size());
        const std::size_t len =
            std::min<std::size_t>(1 + rng.below(64), s.size() - at);
        s.insert(at, s.substr(at, len));
        break;
      }
      case 3: {  // flip a byte
        const std::size_t at = rng.below(s.size());
        s[at] = static_cast<char>(s[at] ^ (1 + (rng.next() % 255)));
        break;
      }
      case 4: {  // insert a dictionary token
        const std::size_t n = sizeof(kDictionary) / sizeof(kDictionary[0]);
        const std::string tok =
            std::string(" ") + kDictionary[rng.below(n)] + " ";
        s.insert(rng.below(s.size() + 1), tok);
        break;
      }
      case 5: {  // scramble a digit (counts, coordinates)
        for (std::size_t tries = 0; tries < 32; ++tries) {
          const std::size_t at = rng.below(s.size());
          if (s[at] >= '0' && s[at] <= '9') {
            s[at] = static_cast<char>('0' + rng.below(10));
            break;
          }
        }
        break;
      }
      default: {  // splice: our prefix + another corpus file's suffix
        const std::string& other = corpus[rng.below(corpus.size())];
        const std::size_t cut = rng.below(s.size() + 1);
        const std::size_t from = rng.below(other.size() + 1);
        s = s.substr(0, cut) + other.substr(from);
        break;
      }
    }
  }
  return s;
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<std::string> corpusOf(const fs::path& dir,
                                  std::string_view extension) {
  std::vector<fs::path> paths;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.is_regular_file() && e.path().extension() == extension) {
      paths.push_back(e.path());
    }
  }
  std::sort(paths.begin(), paths.end());  // determinism across filesystems
  std::vector<std::string> out;
  for (const fs::path& p : paths) out.push_back(slurp(p));
  return out;
}

struct Violation {
  bool failed = false;
  std::string what;
};

/// Runs `body` expecting no exception of any kind.
template <typename Body>
Violation expectNoThrow(const char* what, Body&& body) {
  try {
    body();
  } catch (const std::exception& e) {
    return {true, std::string(what) + " threw: " + e.what()};
  } catch (...) {
    return {true, std::string(what) + " threw a non-std exception"};
  }
  return {};
}

/// Runs `body` expecting either success or lefdef::ParseError.
template <typename Body>
Violation expectParseErrorOnly(const char* what, Body&& body) {
  try {
    body();
  } catch (const lefdef::ParseError&) {
    // expected failure mode
  } catch (const std::exception& e) {
    return {true,
            std::string(what) + " threw a non-ParseError: " + e.what()};
  } catch (...) {
    return {true, std::string(what) + " threw a non-std exception"};
  }
  return {};
}

Violation fuzzLefOnce(const std::string& input) {
  {
    db::Tech tech;
    db::Library lib;
    lefdef::ParseOptions opts;
    opts.file = "<fuzz>";
    opts.recover = true;
    const Violation v = expectNoThrow("recovery parseLef", [&] {
      (void)lefdef::parseLef(input, tech, lib, opts);
    });
    if (v.failed) return v;
  }
  db::Tech tech;
  db::Library lib;
  return expectParseErrorOnly(
      "strict parseLef", [&] { lefdef::parseLef(input, tech, lib); });
}

Violation fuzzDefOnce(const std::string& input, const db::Tech& tech,
                      const db::Library& lib) {
  {
    db::Design design;
    design.tech = &tech;
    design.lib = &lib;
    lefdef::ParseOptions opts;
    opts.file = "<fuzz>";
    opts.recover = true;
    const Violation v = expectNoThrow("recovery parseDef", [&] {
      (void)lefdef::parseDef(input, design, opts);
    });
    if (v.failed) return v;
  }
  db::Design design;
  design.tech = &tech;
  design.lib = &lib;
  return expectParseErrorOnly("strict parseDef",
                              [&] { lefdef::parseDef(input, design); });
}

/// Differential check: the chunked streaming parser must be observably
/// identical to the legacy parser on arbitrary mutated input (DESIGN.md
/// "Streaming ingest & scale" — the only allowed divergence is the
/// strict-mode partial residue on the target design, which fingerprinting
/// two separate targets never observes).
Violation fuzzStreamOnce(const std::string& input, const db::Tech& tech,
                         const db::Library& lib, Rng& rng) {
  lefdef::StreamOptions so;
  so.parse.file = "<fuzz>";
  so.numThreads = 1 + static_cast<int>(rng.below(3));
  so.chunkBytes = 64 + rng.below(4096);

  // Recovery mode: neither parser may throw, and they must agree on the
  // parsed design and the full diagnostic stream.
  {
    lefdef::ParseOptions opts = so.parse;
    opts.recover = true;
    db::Design legacy;
    legacy.tech = &tech;
    legacy.lib = &lib;
    lefdef::ParseResult lr;
    Violation v = expectNoThrow("recovery parseDef (legacy)", [&] {
      lr = lefdef::parseDef(input, legacy, opts);
    });
    if (v.failed) return v;
    db::Design streamed;
    streamed.tech = &tech;
    streamed.lib = &lib;
    lefdef::StreamOptions ropts = so;
    ropts.parse.recover = true;
    lefdef::ParseResult sr;
    v = expectNoThrow("recovery parseDefStream", [&] {
      sr = lefdef::parseDefStream(input, streamed, ropts);
    });
    if (v.failed) return v;
    if (db::designFingerprint(legacy) != db::designFingerprint(streamed)) {
      return {true, "recovery streamed design diverged from legacy"};
    }
    if (lr.diags.size() != sr.diags.size()) {
      return {true, "recovery streamed diag count " +
                        std::to_string(sr.diags.size()) + " != legacy " +
                        std::to_string(lr.diags.size())};
    }
    for (std::size_t i = 0; i < lr.diags.size(); ++i) {
      if (lr.diags[i].format() != sr.diags[i].format()) {
        return {true, "recovery diag " + std::to_string(i) +
                          " diverged: " + sr.diags[i].format() + " vs " +
                          lr.diags[i].format()};
      }
    }
  }

  // Strict mode: same outcome — both succeed with identical designs, or
  // both throw ParseError carrying the file's first error.
  std::string legacyErr;
  std::string streamErr;
  bool legacyThrew = false;
  bool streamThrew = false;
  db::Design legacy;
  legacy.tech = &tech;
  legacy.lib = &lib;
  try {
    lefdef::parseDef(input, legacy, so.parse);
  } catch (const lefdef::ParseError& e) {
    legacyThrew = true;
    legacyErr = e.diag.format();
  } catch (const std::exception& e) {
    return {true, std::string("strict parseDef threw a non-ParseError: ") +
                      e.what()};
  }
  db::Design streamed;
  streamed.tech = &tech;
  streamed.lib = &lib;
  try {
    lefdef::parseDefStream(input, streamed, so);
  } catch (const lefdef::ParseError& e) {
    streamThrew = true;
    streamErr = e.diag.format();
  } catch (const std::exception& e) {
    return {true,
            std::string("strict parseDefStream threw a non-ParseError: ") +
                e.what()};
  }
  if (legacyThrew != streamThrew) {
    return {true, std::string("strict outcome diverged: legacy ") +
                      (legacyThrew ? "threw" : "succeeded") +
                      ", streamed " + (streamThrew ? "threw" : "succeeded")};
  }
  if (legacyThrew && legacyErr != streamErr) {
    return {true,
            "strict first error diverged: " + streamErr + " vs " + legacyErr};
  }
  if (!legacyThrew &&
      db::designFingerprint(legacy) != db::designFingerprint(streamed)) {
    return {true, "strict streamed design diverged from legacy"};
  }
  return {};
}

Violation fuzzCacheOnce(const std::string& input, const db::Tech& tech,
                        const db::Library& lib) {
  return expectNoThrow("AccessCache::load", [&] {
    core::AccessCache cache;
    std::string error;
    (void)cache.load(input, tech, lib, &error);
  });
}

int usage() {
  std::fprintf(stderr,
               "usage: pao_fuzz <lef|def|cache|stream|all> <corpus-dir> "
               "<iterations> [seed]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string kind = argv[1];
  const fs::path dir = argv[2];
  const long iterations = std::atol(argv[3]);
  const std::uint64_t seed =
      argc > 4 ? static_cast<std::uint64_t>(std::atoll(argv[4])) : 1;
  if (iterations <= 0 ||
      (kind != "lef" && kind != "def" && kind != "cache" &&
       kind != "stream" && kind != "all")) {
    return usage();
  }
  if (!fs::is_directory(dir)) {
    std::fprintf(stderr, "pao_fuzz: no such corpus dir: %s\n",
                 dir.string().c_str());
    return 2;
  }

  const bool doLef = kind == "lef" || kind == "all";
  const bool doDef = kind == "def" || kind == "all";
  const bool doCache = kind == "cache" || kind == "all";
  const bool doStream = kind == "stream" || kind == "all";
  const std::vector<std::string> lefs = corpusOf(dir, ".lef");
  const std::vector<std::string> defs = corpusOf(dir, ".def");
  const std::vector<std::string> caches = corpusOf(dir, ".cache");
  if ((doLef && lefs.empty()) || (doDef && (defs.empty() || lefs.empty())) ||
      (doCache && (caches.empty() || lefs.empty())) ||
      (doStream && (defs.empty() || lefs.empty()))) {
    std::fprintf(stderr,
                 "pao_fuzz: corpus needs .lef seeds (plus .def/.cache for "
                 "those modes)\n");
    return 2;
  }

  // DEF and cache inputs are interpreted against a fixed tech/library: the
  // first (unmutated) corpus LEF.
  db::Tech tech;
  db::Library lib;
  lefdef::parseLef(lefs.front(), tech, lib);

  Rng rng{seed * 0x9E3779B97F4A7C15ULL + 1};
  long executed = 0;
  for (long i = 0; i < iterations; ++i) {
    Violation v;
    std::string input;
    switch (rng.next() % 4) {
      case 0:
        if (!doLef) continue;
        input = mutate(lefs[rng.below(lefs.size())], lefs, rng);
        v = fuzzLefOnce(input);
        break;
      case 1:
        if (!doDef) continue;
        input = mutate(defs[rng.below(defs.size())], defs, rng);
        v = fuzzDefOnce(input, tech, lib);
        break;
      case 2:
        if (!doStream) continue;
        input = mutate(defs[rng.below(defs.size())], defs, rng);
        v = fuzzStreamOnce(input, tech, lib, rng);
        break;
      default:
        if (!doCache) continue;
        input = mutate(caches[rng.below(caches.size())], caches, rng);
        v = fuzzCacheOnce(input, tech, lib);
        break;
    }
    ++executed;
    if (v.failed) {
      std::fprintf(stderr, "pao_fuzz: iteration %ld (seed %llu): %s\n", i,
                   static_cast<unsigned long long>(seed), v.what.c_str());
      std::ofstream dump("pao_fuzz_failure.txt", std::ios::binary);
      dump << input;
      std::fprintf(stderr, "pao_fuzz: failing input written to "
                           "pao_fuzz_failure.txt\n");
      return 1;
    }
  }
  std::fprintf(stderr, "pao_fuzz: %ld/%ld iteration(s) clean (%s, seed %llu)\n",
               executed, iterations, kind.c_str(),
               static_cast<unsigned long long>(seed));
  return 0;
}
