// pao_fuzz — deterministic mutation fuzzer for the LEF/DEF parsers and the
// access-cache reader.
//
//   pao_fuzz <lef|def|cache|all> <corpus-dir> <iterations> [seed]
//
// Each iteration picks a corpus file of the target kind, applies 1-4 seeded
// mutations (truncation, span deletion/duplication, byte flips, dictionary
// token insertion, digit scrambling, cross-file splicing), and checks the
// robustness contract:
//   * recovery-mode parsing (ParseOptions::recover) must never throw — it
//     accumulates diagnostics and returns whatever parsed;
//   * strict-mode parsing may throw lefdef::ParseError and nothing else;
//   * AccessCache::load never throws: it merges entries or rejects the file
//     with a reason.
// Any crash, unexpected exception type, or sanitizer trap is a finding.
// Everything is a pure function of (corpus, iterations, seed), so a failing
// run is reproduced by re-running with the same arguments; the iteration
// number of the first violation is printed.
//
// Exit codes: 0 all iterations clean, 1 contract violation, 2 usage/corpus
// error.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "db/design.hpp"
#include "lefdef/def_parser.hpp"
#include "lefdef/lef_parser.hpp"
#include "pao/access_cache.hpp"

namespace fs = std::filesystem;

namespace {

using namespace pao;

struct Rng {
  std::uint64_t state;
  /// splitmix64: tiny, well-distributed, and identical everywhere.
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }
  std::size_t below(std::size_t n) {
    return n == 0 ? 0 : static_cast<std::size_t>(next() % n);
  }
};

/// Tokens likely to reach interesting parser states when spliced in.
constexpr const char* kDictionary[] = {
    ";",        "END",      "MACRO",   "PIN",        "LAYER",     "VIA",
    "UNITS",    "DO",       "BY",      "STEP",       "COMPONENTS", "PINS",
    "NETS",     "TRACKS",   "ROW",     "DIEAREA",    "-",          "+",
    "(",        ")",        "PLACED",  "RECT",       "PORT",       "ENTRY",
    "PATTERNS", "PATTERN",  "ORDER",   "AP",         "FINGERPRINT",
    "PAO_ACCESS_CACHE",     "v1",      "v2",         "9999999999999999999",
    "-1",       "1e309",    "0.5",     "nan",        "\"",         "#",
};

std::string mutate(const std::string& base,
                   const std::vector<std::string>& corpus, Rng& rng) {
  std::string s = base;
  const std::size_t ops = 1 + rng.below(4);
  for (std::size_t o = 0; o < ops; ++o) {
    if (s.empty()) s = " ";
    switch (rng.next() % 7) {
      case 0:  // truncate
        s.resize(rng.below(s.size() + 1));
        break;
      case 1: {  // delete a span
        const std::size_t at = rng.below(s.size());
        s.erase(at, 1 + rng.below(64));
        break;
      }
      case 2: {  // duplicate a span
        const std::size_t at = rng.below(s.size());
        const std::size_t len =
            std::min<std::size_t>(1 + rng.below(64), s.size() - at);
        s.insert(at, s.substr(at, len));
        break;
      }
      case 3: {  // flip a byte
        const std::size_t at = rng.below(s.size());
        s[at] = static_cast<char>(s[at] ^ (1 + (rng.next() % 255)));
        break;
      }
      case 4: {  // insert a dictionary token
        const std::size_t n = sizeof(kDictionary) / sizeof(kDictionary[0]);
        const std::string tok =
            std::string(" ") + kDictionary[rng.below(n)] + " ";
        s.insert(rng.below(s.size() + 1), tok);
        break;
      }
      case 5: {  // scramble a digit (counts, coordinates)
        for (std::size_t tries = 0; tries < 32; ++tries) {
          const std::size_t at = rng.below(s.size());
          if (s[at] >= '0' && s[at] <= '9') {
            s[at] = static_cast<char>('0' + rng.below(10));
            break;
          }
        }
        break;
      }
      default: {  // splice: our prefix + another corpus file's suffix
        const std::string& other = corpus[rng.below(corpus.size())];
        const std::size_t cut = rng.below(s.size() + 1);
        const std::size_t from = rng.below(other.size() + 1);
        s = s.substr(0, cut) + other.substr(from);
        break;
      }
    }
  }
  return s;
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<std::string> corpusOf(const fs::path& dir,
                                  std::string_view extension) {
  std::vector<fs::path> paths;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.is_regular_file() && e.path().extension() == extension) {
      paths.push_back(e.path());
    }
  }
  std::sort(paths.begin(), paths.end());  // determinism across filesystems
  std::vector<std::string> out;
  for (const fs::path& p : paths) out.push_back(slurp(p));
  return out;
}

struct Violation {
  bool failed = false;
  std::string what;
};

/// Runs `body` expecting no exception of any kind.
template <typename Body>
Violation expectNoThrow(const char* what, Body&& body) {
  try {
    body();
  } catch (const std::exception& e) {
    return {true, std::string(what) + " threw: " + e.what()};
  } catch (...) {
    return {true, std::string(what) + " threw a non-std exception"};
  }
  return {};
}

/// Runs `body` expecting either success or lefdef::ParseError.
template <typename Body>
Violation expectParseErrorOnly(const char* what, Body&& body) {
  try {
    body();
  } catch (const lefdef::ParseError&) {
    // expected failure mode
  } catch (const std::exception& e) {
    return {true,
            std::string(what) + " threw a non-ParseError: " + e.what()};
  } catch (...) {
    return {true, std::string(what) + " threw a non-std exception"};
  }
  return {};
}

Violation fuzzLefOnce(const std::string& input) {
  {
    db::Tech tech;
    db::Library lib;
    lefdef::ParseOptions opts;
    opts.file = "<fuzz>";
    opts.recover = true;
    const Violation v = expectNoThrow("recovery parseLef", [&] {
      (void)lefdef::parseLef(input, tech, lib, opts);
    });
    if (v.failed) return v;
  }
  db::Tech tech;
  db::Library lib;
  return expectParseErrorOnly(
      "strict parseLef", [&] { lefdef::parseLef(input, tech, lib); });
}

Violation fuzzDefOnce(const std::string& input, const db::Tech& tech,
                      const db::Library& lib) {
  {
    db::Design design;
    design.tech = &tech;
    design.lib = &lib;
    lefdef::ParseOptions opts;
    opts.file = "<fuzz>";
    opts.recover = true;
    const Violation v = expectNoThrow("recovery parseDef", [&] {
      (void)lefdef::parseDef(input, design, opts);
    });
    if (v.failed) return v;
  }
  db::Design design;
  design.tech = &tech;
  design.lib = &lib;
  return expectParseErrorOnly("strict parseDef",
                              [&] { lefdef::parseDef(input, design); });
}

Violation fuzzCacheOnce(const std::string& input, const db::Tech& tech,
                        const db::Library& lib) {
  return expectNoThrow("AccessCache::load", [&] {
    core::AccessCache cache;
    std::string error;
    (void)cache.load(input, tech, lib, &error);
  });
}

int usage() {
  std::fprintf(stderr,
               "usage: pao_fuzz <lef|def|cache|all> <corpus-dir> "
               "<iterations> [seed]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string kind = argv[1];
  const fs::path dir = argv[2];
  const long iterations = std::atol(argv[3]);
  const std::uint64_t seed =
      argc > 4 ? static_cast<std::uint64_t>(std::atoll(argv[4])) : 1;
  if (iterations <= 0 ||
      (kind != "lef" && kind != "def" && kind != "cache" && kind != "all")) {
    return usage();
  }
  if (!fs::is_directory(dir)) {
    std::fprintf(stderr, "pao_fuzz: no such corpus dir: %s\n",
                 dir.string().c_str());
    return 2;
  }

  const bool doLef = kind == "lef" || kind == "all";
  const bool doDef = kind == "def" || kind == "all";
  const bool doCache = kind == "cache" || kind == "all";
  const std::vector<std::string> lefs = corpusOf(dir, ".lef");
  const std::vector<std::string> defs = corpusOf(dir, ".def");
  const std::vector<std::string> caches = corpusOf(dir, ".cache");
  if ((doLef && lefs.empty()) || (doDef && (defs.empty() || lefs.empty())) ||
      (doCache && (caches.empty() || lefs.empty()))) {
    std::fprintf(stderr,
                 "pao_fuzz: corpus needs .lef seeds (plus .def/.cache for "
                 "those modes)\n");
    return 2;
  }

  // DEF and cache inputs are interpreted against a fixed tech/library: the
  // first (unmutated) corpus LEF.
  db::Tech tech;
  db::Library lib;
  lefdef::parseLef(lefs.front(), tech, lib);

  Rng rng{seed * 0x9E3779B97F4A7C15ULL + 1};
  long executed = 0;
  for (long i = 0; i < iterations; ++i) {
    Violation v;
    std::string what;
    switch (rng.next() % 3) {
      case 0:
        if (!doLef) continue;
        v = fuzzLefOnce(mutate(lefs[rng.below(lefs.size())], lefs, rng));
        break;
      case 1:
        if (!doDef) continue;
        v = fuzzDefOnce(mutate(defs[rng.below(defs.size())], defs, rng),
                        tech, lib);
        break;
      default:
        if (!doCache) continue;
        v = fuzzCacheOnce(
            mutate(caches[rng.below(caches.size())], caches, rng), tech,
            lib);
        break;
    }
    ++executed;
    if (v.failed) {
      std::fprintf(stderr, "pao_fuzz: iteration %ld (seed %llu): %s\n", i,
                   static_cast<unsigned long long>(seed), v.what.c_str());
      return 1;
    }
  }
  std::fprintf(stderr, "pao_fuzz: %ld/%ld iteration(s) clean (%s, seed %llu)\n",
               executed, iterations, kind.c_str(),
               static_cast<unsigned long long>(seed));
  return 0;
}
