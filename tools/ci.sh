#!/bin/sh
# CI entry point: eleven legs over the same tree —
#   1. Release        (the tier-1 gate: fast, optimizer-exposed UB surfaces;
#                      ctest includes the pao_lint_tree static-analysis gate)
#   2. Lint           (explicit pao_lint run over src/tools/tests/examples/
#                      bench with --design-doc DESIGN.md, so the whole-
#                      program rules — layering, lock-discipline,
#                      catalog-drift — gate alongside the per-file ones;
#                      fails on any unsuppressed finding. A second pass
#                      renders --format sarif and report_check validates
#                      the artifact's SARIF 2.1.0 shape)
#   3. Obs smoke      (analyze with --report-json/--trace-out on a smoke
#                      preset, validated by report_check: schema, trace span
#                      nesting, and threads-1-vs-4 report equivalence; plus
#                      the profile smoke: analyze --profile-out on the mixed
#                      preset at --threads 4 must emit a valid pao-report/2
#                      whose headroom exceeds 1)
#   4. Scale smoke    (huge-preset gen -> analyze --stream -> report_check
#                      ingest -> bench_scale self-checks; PAO_CI_SCALE=1
#                      for the full ~1.5M-instance acceptance run)
#   5. Fault matrix   (tests/fault_matrix.sh: every cataloged fault point
#                      under --keep-going recovers or degrades with the
#                      documented exit code and a valid pao-report/1)
#   6. Service smoke  (tests/serve_smoke.sh: boot the pao_serve daemon on a
#                      Unix socket, drive load/move/save/report through
#                      pao_client, assert normalized byte-equivalence with a
#                      fresh `pao_cli analyze`, and report_check the metrics
#                      snapshot; the serve fault points ride in leg 5 and
#                      the concurrency soak rides the TSan ctest leg)
#   7. OBS/FAULTS=OFF (zero-overhead gate: a build with instrumentation and
#                      fault injection compiled out must not reference the
#                      obs registry, tracer, or fault registry at all)
#   8. TSan           (RelWithDebInfo + -fsanitize=thread, exercising the
#                      job-graph executor paths in DrcEngine::checkAll, the
#                      oracle Steps 1-3 pipeline graph, router planning, and
#                      the pao_serve soak: >=4 concurrent clients over 2
#                      tenants against the live epoll server; plus a
#                      dedicated soak — the JobGraph suite repeated under
#                      oversubscription and the oracle graph-vs-batch
#                      equivalence at threads 1/4/0)
#   9. UBSan          (-fsanitize=undefined with all diagnostics fatal)
#  10. UBSan fuzz     (pao_fuzz: >=10k seeded mutation iterations over the
#                      LEF/DEF parsers, the streamed/legacy differential,
#                      and the cache reader, zero findings)
# The whole tree builds with -Wall -Wextra -Werror in every leg.
# Usage: tools/ci.sh [source-dir]   (defaults to the script's parent repo)
set -eu

SRC=${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}
JOBS=$(nproc 2>/dev/null || echo 2)

echo "== Release build =="
cmake -B "$SRC/build-ci-release" -S "$SRC" -DCMAKE_BUILD_TYPE=Release
cmake --build "$SRC/build-ci-release" -j "$JOBS"
ctest --test-dir "$SRC/build-ci-release" --output-on-failure -j "$JOBS"

echo "== Static analysis (pao_lint) =="
# Whole-program run: per-file rules plus layering / lock-discipline /
# catalog-drift against the real DESIGN.md. No baseline — any unsuppressed
# finding fails the leg.
"$SRC/build-ci-release/tools/pao_lint" \
  --design-doc "$SRC/DESIGN.md" \
  "$SRC/src" "$SRC/tools" "$SRC/tests" "$SRC/examples" "$SRC/bench"

echo "== Static analysis (SARIF artifact) =="
# The same run rendered as SARIF 2.1.0 — the artifact CI uploaders consume —
# structurally validated by report_check (version, tool.driver.rules, and
# per-result ruleId/message/location shape).
"$SRC/build-ci-release/tools/pao_lint" \
  --design-doc "$SRC/DESIGN.md" --format sarif \
  "$SRC/src" "$SRC/tools" "$SRC/tests" "$SRC/examples" "$SRC/bench" \
  > "$SRC/build-ci-release/lint.sarif"
"$SRC/build-ci-release/tools/report_check" sarif \
  "$SRC/build-ci-release/lint.sarif"

echo "== Incremental-session smoke (bench-incremental) =="
# Session-vs-batch equivalence over random moves, plus warm-cache reuse:
# the bench exits non-zero on any chosen-pattern divergence, and the cache
# line must report nonzero hits (fresh reruns reuse the session's entries).
BI_DIR="$SRC/build-ci-release"
"$BI_DIR/tools/pao_cli" gen 0 0.01 "$BI_DIR/ci_bi"
# pao_cli prints all human-readable status to stderr (stdout is reserved for
# --report-json -), so capture both streams for the grep checks.
BI_OUT=$("$BI_DIR/tools/pao_cli" bench-incremental \
  "$BI_DIR/ci_bi.lef" "$BI_DIR/ci_bi.def" --moves 6 --threads 2 2>&1)
echo "$BI_OUT"
echo "$BI_OUT" | grep -q "equivalence      : OK"
BI_HITS=$(echo "$BI_OUT" | sed -n 's/.*entries, \([0-9][0-9]*\) hits.*/\1/p')
[ "${BI_HITS:-0}" -gt 0 ]

echo "== Observability smoke (report + trace) =="
# The analyze report must validate against pao-report/1, the trace must hold
# at least 4 distinct phase spans with parallelFor worker spans nested under
# them, and the report must be byte-identical across thread counts once
# timing-valued keys are stripped.
"$BI_DIR/tools/pao_cli" gen 0 0.01 "$BI_DIR/ci_obs"
"$BI_DIR/tools/pao_cli" analyze "$BI_DIR/ci_obs.lef" "$BI_DIR/ci_obs.def" \
  --threads 1 --report-json "$BI_DIR/ci_obs_r1.json"
"$BI_DIR/tools/pao_cli" analyze "$BI_DIR/ci_obs.lef" "$BI_DIR/ci_obs.def" \
  --threads 4 --report-json "$BI_DIR/ci_obs_r4.json" \
  --trace-out "$BI_DIR/ci_obs_t4.json"
"$BI_DIR/tools/report_check" report "$BI_DIR/ci_obs_r4.json"
"$BI_DIR/tools/report_check" trace "$BI_DIR/ci_obs_t4.json" 4 --require-worker
"$BI_DIR/tools/report_check" compare \
  "$BI_DIR/ci_obs_r1.json" "$BI_DIR/ci_obs_r4.json"

echo "== Profile smoke (job-graph profiler) =="
# The mixed preset at --threads 4 must emit a schema-valid pao-report/2
# profile section whose critical path fits under the measured wall time and
# whose parallelism headroom exceeds 1 (the acceptance bar for the
# profiler: a multi-worker run on a fan-out-rich graph is never fully
# serial).
"$BI_DIR/tools/pao_cli" gen mixed 0.04 "$BI_DIR/ci_prof"
"$BI_DIR/tools/pao_cli" analyze "$BI_DIR/ci_prof.lef" "$BI_DIR/ci_prof.def" \
  --threads 4 --profile-out "$BI_DIR/ci_prof_p.json"
"$BI_DIR/tools/report_check" profile "$BI_DIR/ci_prof_p.json"
# report_check prints its human summary on stderr (stdout stays empty).
PROF_HEADROOM=$("$BI_DIR/tools/report_check" profile "$BI_DIR/ci_prof_p.json" \
  2>&1 | sed -n 's/^ *headroom *: *\([0-9.][0-9.]*\).*/\1/p')
echo "profile headroom: ${PROF_HEADROOM:-missing}"
awk "BEGIN { exit !(${PROF_HEADROOM:-0} > 1.0) }"

echo "== Scale smoke (streaming ingest) =="
# ROADMAP item 3 acceptance path at CI-friendly size: stream-generate a
# huge-preset design, ingest it with the chunked parallel parser, validate
# the report's ingest section (throughput and peak RSS must be recorded),
# and run the scale bench's self-checks (streamed==legacy fingerprint,
# shard-count invariance, nonzero throughput). PAO_CI_SCALE=1 reproduces
# the full ~1.5M-instance acceptance run.
SCALE=${PAO_CI_SCALE:-0.02}
"$BI_DIR/tools/pao_cli" gen h "$SCALE" "$BI_DIR/ci_scale"
"$BI_DIR/tools/pao_cli" analyze "$BI_DIR/ci_scale.lef" "$BI_DIR/ci_scale.def" \
  --stream --threads 4 --report-json "$BI_DIR/ci_scale_r.json"
"$BI_DIR/tools/report_check" ingest "$BI_DIR/ci_scale_r.json"
env PAO_BENCH_REPORT_DIR="$BI_DIR" PAO_SCALE="$SCALE" \
  "$BI_DIR/bench/bench_scale"
"$BI_DIR/tools/report_check" ingest "$BI_DIR/BENCH_scale.json"

echo "== Fault-injection matrix =="
# Every cataloged fault point, injected one at a time via PAO_FAULTS, must
# either fully recover or degrade gracefully with the documented exit code
# and a schema-valid report — never abort. fault_matrix.sh is also a ctest
# entry; this leg runs it against the Release build explicitly.
sh "$SRC/tests/fault_matrix.sh" "$BI_DIR/tools/pao_cli" \
  "$BI_DIR/tools/report_check" "$BI_DIR/ci_fault_matrix" \
  "$BI_DIR/tools/pao_serve" "$BI_DIR/tools/pao_client"

echo "== Service smoke (pao_serve) =="
# Boot the long-lived daemon on a Unix socket, mutate a tenant through
# pao_client, and assert the service-level equivalence contract: the
# daemon's report matches a fresh `pao_cli analyze` of the saved design
# byte-for-byte after normalization (modulo producer-specific sections).
sh "$SRC/tests/serve_smoke.sh" "$BI_DIR/tools/pao_cli" \
  "$BI_DIR/tools/pao_serve" "$BI_DIR/tools/pao_client" \
  "$BI_DIR/tools/report_check" "$BI_DIR/ci_serve_smoke"

echo "== PAO_OBS=OFF / PAO_FAULTS=OFF zero-overhead build =="
# With instrumentation and fault injection compiled out, the hot libraries
# must carry no reference to the metrics registry, tracer, or fault
# registry: the macros expand to nothing, so any surviving symbol means a
# stray direct call crept in.
OFF_DIR="$SRC/build-ci-obsoff"
cmake -B "$OFF_DIR" -S "$SRC" -DCMAKE_BUILD_TYPE=Release -DPAO_OBS=OFF \
  -DPAO_FAULTS=OFF
cmake --build "$OFF_DIR" -j "$JOBS" \
  --target pao_util pao_drc pao_core pao_router pao_lefdef
for lib in pao_util pao_drc pao_core pao_router pao_lefdef; do
  archive=$(find "$OFF_DIR/src" -name "lib${lib}.a" | head -n 1)
  [ -n "$archive" ]
  if nm -C "$archive" | grep -E \
      'pao::obs::(Registry|Tracer|analyzeProfile|profileSectionJson|recordProfileTrace|GraphProfile)' \
      >/dev/null; then
    echo "FAIL: $lib references obs registry/tracer/profiler with PAO_OBS=OFF"
    exit 1
  fi
  if nm -C "$archive" | grep -E ' U .*FaultRegistry' >/dev/null; then
    echo "FAIL: $lib references util::FaultRegistry with PAO_FAULTS=OFF"
    exit 1
  fi
  echo "$lib: no obs/fault registry references"
done

echo "== ThreadSanitizer build =="
cmake -B "$SRC/build-ci-tsan" -S "$SRC" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPAO_SANITIZE=thread
cmake --build "$SRC/build-ci-tsan" -j "$JOBS"
# TSan slows execution ~5-15x; keep -j so independent tests overlap.
ctest --test-dir "$SRC/build-ci-tsan" --output-on-failure -j "$JOBS"

echo "== ThreadSanitizer job-graph soak =="
# The scheduler races that matter (steal vs. owner pop, ready-count
# decrement vs. wakeup, dependent-push vs. drain) need many graph
# lifecycles to surface, not one pass: repeat the whole JobGraph suite —
# ManySmallGraphsUnderOversubscription runs 8 workers on whatever cores
# the CI box has — and then pin the end-to-end contract: the oracle's
# single pipeline graph must match the fresh batch run at threads 1/4/0.
"$SRC/build-ci-tsan/tests/pao_tests" \
  --gtest_filter='JobGraph.*' --gtest_repeat=20 --gtest_brief=1
"$SRC/build-ci-tsan/tests/pao_tests" --gtest_brief=1 \
  --gtest_filter='OracleFixture.ThreadCountDoesNotChangeResult:Threads/SessionEquivalence.*'

echo "== UndefinedBehaviorSanitizer build =="
cmake -B "$SRC/build-ci-ubsan" -S "$SRC" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPAO_SANITIZE=undefined
cmake --build "$SRC/build-ci-ubsan" -j "$JOBS"
ctest --test-dir "$SRC/build-ci-ubsan" --output-on-failure -j "$JOBS"

echo "== UBSan fuzz sweep =="
# Deterministic mutation fuzzing of the LEF/DEF parsers and the cache
# reader under -fsanitize=undefined: 3x4000 = 12000 seeded iterations,
# reproducible by re-running pao_fuzz with the printed seed.
for fuzzseed in 101 102 103; do
  "$SRC/build-ci-ubsan/tools/pao_fuzz" all "$SRC/tests/fuzz_corpus" \
    4000 "$fuzzseed"
done

echo "== CI OK =="
