#!/bin/sh
# CI entry point: builds and tests the tree twice —
#   1. Release        (the tier-1 gate: fast, optimizer-exposed UB surfaces)
#   2. TSan           (RelWithDebInfo + -fsanitize=thread, exercising the
#                      parallel executor paths in DrcEngine::checkAll, the
#                      oracle Steps 1-3 and router planning)
# Usage: tools/ci.sh [source-dir]   (defaults to the script's parent repo)
set -eu

SRC=${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}
JOBS=$(nproc 2>/dev/null || echo 2)

echo "== Release build =="
cmake -B "$SRC/build-ci-release" -S "$SRC" -DCMAKE_BUILD_TYPE=Release
cmake --build "$SRC/build-ci-release" -j "$JOBS"
ctest --test-dir "$SRC/build-ci-release" --output-on-failure -j "$JOBS"

echo "== ThreadSanitizer build =="
cmake -B "$SRC/build-ci-tsan" -S "$SRC" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPAO_SANITIZE=thread
cmake --build "$SRC/build-ci-tsan" -j "$JOBS"
# TSan slows execution ~5-15x; keep -j so independent tests overlap.
ctest --test-dir "$SRC/build-ci-tsan" --output-on-failure -j "$JOBS"

echo "== CI OK =="
