#!/bin/sh
# CI entry point: four legs over the same tree —
#   1. Release        (the tier-1 gate: fast, optimizer-exposed UB surfaces;
#                      ctest includes the pao_lint_tree static-analysis gate)
#   2. Lint           (explicit pao_lint run over src/tools/tests/examples/
#                      bench — fails on any unsuppressed finding)
#   3. TSan           (RelWithDebInfo + -fsanitize=thread, exercising the
#                      parallel executor paths in DrcEngine::checkAll, the
#                      oracle Steps 1-3 and router planning)
#   4. UBSan          (-fsanitize=undefined with all diagnostics fatal)
# The whole tree builds with -Wall -Wextra -Werror in every leg.
# Usage: tools/ci.sh [source-dir]   (defaults to the script's parent repo)
set -eu

SRC=${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}
JOBS=$(nproc 2>/dev/null || echo 2)

echo "== Release build =="
cmake -B "$SRC/build-ci-release" -S "$SRC" -DCMAKE_BUILD_TYPE=Release
cmake --build "$SRC/build-ci-release" -j "$JOBS"
ctest --test-dir "$SRC/build-ci-release" --output-on-failure -j "$JOBS"

echo "== Static analysis (pao_lint) =="
"$SRC/build-ci-release/tools/pao_lint" \
  "$SRC/src" "$SRC/tools" "$SRC/tests" "$SRC/examples" "$SRC/bench"

echo "== Incremental-session smoke (bench-incremental) =="
# Session-vs-batch equivalence over random moves, plus warm-cache reuse:
# the bench exits non-zero on any chosen-pattern divergence, and the cache
# line must report nonzero hits (fresh reruns reuse the session's entries).
BI_DIR="$SRC/build-ci-release"
"$BI_DIR/tools/pao_cli" gen 0 0.01 "$BI_DIR/ci_bi"
BI_OUT=$("$BI_DIR/tools/pao_cli" bench-incremental \
  "$BI_DIR/ci_bi.lef" "$BI_DIR/ci_bi.def" --moves 6 --threads 2)
echo "$BI_OUT"
echo "$BI_OUT" | grep -q "equivalence      : OK"
BI_HITS=$(echo "$BI_OUT" | sed -n 's/.*entries, \([0-9][0-9]*\) hits.*/\1/p')
[ "${BI_HITS:-0}" -gt 0 ]

echo "== ThreadSanitizer build =="
cmake -B "$SRC/build-ci-tsan" -S "$SRC" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPAO_SANITIZE=thread
cmake --build "$SRC/build-ci-tsan" -j "$JOBS"
# TSan slows execution ~5-15x; keep -j so independent tests overlap.
ctest --test-dir "$SRC/build-ci-tsan" --output-on-failure -j "$JOBS"

echo "== UndefinedBehaviorSanitizer build =="
cmake -B "$SRC/build-ci-ubsan" -S "$SRC" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPAO_SANITIZE=undefined
cmake --build "$SRC/build-ci-ubsan" -j "$JOBS"
ctest --test-dir "$SRC/build-ci-ubsan" --output-on-failure -j "$JOBS"

echo "== CI OK =="
