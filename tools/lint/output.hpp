// Output and ratchet layer for pao_lint: renders findings as human text,
// machine JSON, or SARIF 2.1.0, and implements the --baseline ratchet
// (known findings keyed by rule|file|message, with file paths relativized
// to the repository component so absolute and relative invocations agree).
#pragma once

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/rules.hpp"

namespace pao::lint {

enum class Format : int { kText, kJson, kSarif };

/// Parses a --format operand ("text", "json", "sarif"). False on anything
/// else.
bool parseFormat(std::string_view name, Format* out);

/// One catalog entry per rule id, in display order; drives --list-rules and
/// the SARIF tool.driver.rules array. `suppressible` is false only for the
/// internal `suppression` rule.
struct RuleInfo {
  std::string_view id;
  std::string_view summary;
  bool suppressible = true;
};
const std::vector<RuleInfo>& ruleCatalog();

/// "path/to/repo/src/db/tech.hpp" -> "src/db/tech.hpp": the path suffix
/// from the last repository-component directory (src/tools/tests/examples/
/// bench, or a known repo-root file like DESIGN.md) onward. Paths with no
/// recognizable component come back unchanged (minus a leading "./").
std::string relativizePath(std::string_view path);

/// rule|relativized-file|message — the identity a baseline entry matches
/// on. Line numbers are deliberately absent so unrelated edits above a
/// baselined finding do not un-baseline it.
std::string baselineKey(const Finding& f);

/// The --baseline ratchet file: one baselineKey per line, '#' comments and
/// blank lines ignored.
struct Baseline {
  std::set<std::string> keys;
  bool contains(const Finding& f) const { return keys.count(baselineKey(f)) != 0; }
};
bool loadBaseline(const std::string& path, Baseline* out, std::string* error);

/// Serializes every unsuppressed finding's key, sorted and unique, for
/// --write-baseline.
std::string renderBaseline(const std::vector<Finding>& findings);

/// Human-readable listing (the classic pao_lint output) followed by a
/// one-line summary. Suppressed findings appear only when `showSuppressed`;
/// baselined findings are always shown but marked.
std::string renderText(const std::vector<Finding>& findings,
                       std::size_t filesScanned, bool showSuppressed);

/// {"findings":[...],"summary":{...}} with every Finding field.
std::string renderJson(const std::vector<Finding>& findings,
                       std::size_t filesScanned);

/// SARIF 2.1.0: one run, tool.driver "pao_lint" with the full rule catalog,
/// one result per finding (suppressed ones carry suppressions[kind:
/// inSource]; baselined ones baselineState "unchanged", the rest "new").
std::string renderSarif(const std::vector<Finding>& findings);

}  // namespace pao::lint
