#include "lint/lexer.hpp"

#include <array>
#include <cctype>

namespace pao::lint {

namespace {

bool isIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool isIdentCont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string_view trimWs(std::string_view s) {
  while (!s.empty() &&
         std::isspace(static_cast<unsigned char>(s.front())) != 0) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())) != 0) {
    s.remove_suffix(1);
  }
  return s;
}

/// Parses every `pao-lint: allow(<rule>)` marker in a comment body. The
/// justification is whatever trails the closing paren (after an optional
/// `:` or `--` separator) up to the next `allow(` or the end of the comment.
void parseSuppressions(std::string_view comment, int line, LexResult& out) {
  constexpr std::string_view kMarker = "pao-lint:";
  std::size_t at = comment.find(kMarker);
  if (at == std::string_view::npos) return;
  std::string_view rest = comment.substr(at + kMarker.size());
  constexpr std::string_view kAllow = "allow(";
  std::size_t a = rest.find(kAllow);
  while (a != std::string_view::npos) {
    const std::size_t ruleBegin = a + kAllow.size();
    const std::size_t close = rest.find(')', ruleBegin);
    if (close == std::string_view::npos) return;
    Suppression s;
    s.line = line;
    s.rule = std::string(trimWs(rest.substr(ruleBegin, close - ruleBegin)));
    // Documentation that merely *mentions* the syntax (e.g. `allow(<rule>)`)
    // is not a suppression: require a plausible rule name.
    const bool plausible =
        !s.rule.empty() &&
        s.rule.find_first_not_of(
            "abcdefghijklmnopqrstuvwxyz"
            "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-") == std::string::npos;
    if (!plausible) {
      a = rest.find(kAllow, close + 1);
      continue;
    }
    std::string_view tail = rest.substr(close + 1);
    const std::size_t nextAllow = tail.find(kAllow);
    if (nextAllow != std::string_view::npos) tail = tail.substr(0, nextAllow);
    tail = trimWs(tail);
    while (!tail.empty() && (tail.front() == ':' || tail.front() == '-')) {
      tail.remove_prefix(1);
    }
    s.justification = std::string(trimWs(tail));
    out.suppressions.push_back(std::move(s));
    a = rest.find(kAllow, close + 1);
  }
}

/// Multi-character punctuators fused into one token. Longest first. `>>` is
/// deliberately absent: emitting two `>` tokens keeps naive template-angle
/// balancing in the rule passes correct for `map<K, vector<V>>`.
constexpr std::array<std::string_view, 18> kPuncts = {
    "<<=", "->*", "...", "::", "->", "<<", "&&", "||", "==", "!=",
    "<=",  ">=",  "+=",  "-=", "*=", "/=", "++", "--",
};

}  // namespace

LexResult lex(std::string_view src) {
  LexResult out;
  const std::size_t n = src.size();
  std::size_t i = 0;
  int line = 1;
  const auto peek = [&](std::size_t k) -> char {
    return i + k < n ? src[i + k] : '\0';
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      const std::size_t s = i + 2;
      while (i < n && src[i] != '\n') ++i;
      parseSuppressions(src.substr(s, i - s), line, out);
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      const std::size_t s = i + 2;
      i += 2;
      while (i < n && !(src[i] == '*' && peek(1) == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      // Report the suppression on the comment's *last* line so a block
      // comment directly above a statement covers that statement.
      parseSuppressions(src.substr(s, i - s), line, out);
      if (i < n) i += 2;
      continue;
    }
    if (c == '#') {
      // Recognize `#include "..."` / `#include <...>` before skipping the
      // directive: the whole-program layering rule works on these edges.
      std::size_t j = i + 1;
      while (j < n && (src[j] == ' ' || src[j] == '\t')) ++j;
      constexpr std::string_view kInclude = "include";
      if (src.compare(j, kInclude.size(), kInclude) == 0) {
        j += kInclude.size();
        while (j < n && (src[j] == ' ' || src[j] == '\t')) ++j;
        if (j < n && (src[j] == '"' || src[j] == '<')) {
          const char closeCh = src[j] == '"' ? '"' : '>';
          const std::size_t pathBegin = j + 1;
          const std::size_t pathEnd =
              src.find_first_of(closeCh == '"' ? "\"\n" : ">\n", pathBegin);
          if (pathEnd != std::string_view::npos && src[pathEnd] == closeCh) {
            out.includes.push_back(
                {line, std::string(src.substr(pathBegin, pathEnd - pathBegin)),
                 closeCh == '>'});
          }
        }
      }
      // Preprocessor directive: skip the whole (possibly continued) line.
      while (i < n) {
        if (src[i] == '\\' && peek(1) == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (src[i] == '\n') break;
        ++i;
      }
      continue;
    }
    if (c == '"' || c == '\'') {
      const std::size_t s = i;
      const int startLine = line;
      ++i;
      while (i < n && src[i] != c) {
        if (src[i] == '\\') ++i;
        if (i < n && src[i] == '\n') ++line;
        ++i;
      }
      if (i < n) ++i;
      out.tokens.push_back({c == '"' ? TokKind::kString : TokKind::kChar,
                            src.substr(s, i - s), startLine});
      continue;
    }
    if (isIdentStart(c)) {
      const std::size_t s = i;
      while (i < n && isIdentCont(src[i])) ++i;
      const std::string_view id = src.substr(s, i - s);
      // Raw string literal: R"delim( ... )delim"
      if ((id == "R" || id == "LR" || id == "u8R" || id == "uR" ||
           id == "UR") &&
          i < n && src[i] == '"') {
        const std::size_t delimBegin = i + 1;
        const std::size_t open = src.find('(', delimBegin);
        if (open != std::string_view::npos) {
          std::string close(")");
          close.append(src.substr(delimBegin, open - delimBegin));
          close.push_back('"');
          const std::size_t e = src.find(close, open + 1);
          const std::size_t end = e == std::string_view::npos
                                      ? n
                                      : e + close.size();
          const int startLine = line;
          for (std::size_t k = s; k < end; ++k) {
            if (src[k] == '\n') ++line;
          }
          out.tokens.push_back(
              {TokKind::kString, src.substr(s, end - s), startLine});
          i = end;
          continue;
        }
      }
      out.tokens.push_back({TokKind::kIdent, id, line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      const std::size_t s = i;
      ++i;
      while (i < n &&
             (isIdentCont(src[i]) || src[i] == '.' ||
              ((src[i] == '+' || src[i] == '-') &&
               (src[i - 1] == 'e' || src[i - 1] == 'E' || src[i - 1] == 'p' ||
                src[i - 1] == 'P')))) {
        ++i;
      }
      out.tokens.push_back({TokKind::kNumber, src.substr(s, i - s), line});
      continue;
    }
    // Punctuation: longest fused operator first, else a single character.
    std::size_t len = 1;
    for (const std::string_view p : kPuncts) {
      if (src.compare(i, p.size(), p) == 0) {
        len = p.size();
        break;
      }
    }
    out.tokens.push_back({TokKind::kPunct, src.substr(i, len), line});
    i += len;
  }
  return out;
}

}  // namespace pao::lint
