#include "lint/facts.hpp"

#include <algorithm>

#include "lint/token_match.hpp"

namespace pao::lint {

namespace {

bool isLower(char c) { return c >= 'a' && c <= 'z'; }
bool isDigitCh(char c) { return c >= '0' && c <= '9'; }

bool isObsMetricMacro(std::string_view m) {
  return m == "PAO_COUNTER_ADD" || m == "PAO_COUNTER_INC" ||
         m == "PAO_GAUGE_SET" || m == "PAO_HISTOGRAM_OBSERVE";
}

bool isFaultMacro(std::string_view m) {
  return m == "PAO_FAULT_POINT" || m == "PAO_FAULT_INJECT";
}

/// Calls that can block (or monopolize the machine) for unbounded time:
/// holding a mutex across one turns every other contender into a convoy.
/// `wait` is deliberately absent — condition_variable::wait *requires* the
/// lock and releases it while blocked.
bool isBlockingFreeCall(std::string_view name) {
  // Socket primitives (free calls only; member .read() etc. are different
  // functions).
  if (name == "read" || name == "write" || name == "send" || name == "recv" ||
      name == "sendto" || name == "recvfrom" || name == "sendmsg" ||
      name == "recvmsg" || name == "accept" || name == "accept4" ||
      name == "connect" || name == "poll" || name == "select" ||
      name == "epoll_wait") {
    return true;
  }
  // C file I/O and process spawning.
  return name == "fopen" || name == "fread" || name == "fwrite" ||
         name == "fclose" || name == "system" || name == "popen";
}

/// Stream types whose construction/open touches the filesystem.
bool isFileStreamType(std::string_view name) {
  return name == "ifstream" || name == "ofstream" || name == "fstream";
}

/// One live lock: `mutex` is the normalized receiver chain handed to the
/// guard's constructor; the guard dies when brace depth drops below
/// `depth`.
struct LiveLock {
  std::string mutex;
  int line = 0;
  int depth = 0;
};

bool isGuardType(std::string_view name) {
  return name == "lock_guard" || name == "scoped_lock" ||
         name == "unique_lock";
}

/// Mutex arguments of a guard constructor: the argument list split on
/// top-level commas, each argument normalized to its trailing identifier
/// chain ("buf->mu" -> "buf.mu"). Tag arguments (std::defer_lock etc.) and
/// `std::adopt_lock` make the guard a non-acquisition (defer) or an
/// already-ordered adoption; both are skipped conservatively.
std::vector<std::string> guardMutexes(const std::vector<Token>& toks,
                                      std::size_t open, std::size_t close,
                                      bool* deferred) {
  std::vector<std::string> mutexes;
  int depth = 0;
  std::size_t lastIdent = toks.size();
  const auto flush = [&] {
    if (lastIdent == toks.size()) return;
    const Receiver r = receiverChain(toks, lastIdent);
    if (r.chain == "std.defer_lock" || r.chain == "std.try_to_lock" ||
        r.chain == "std.adopt_lock" || r.chain == "defer_lock" ||
        r.chain == "try_to_lock" || r.chain == "adopt_lock") {
      *deferred = true;
    } else {
      mutexes.push_back(r.chain);
    }
    lastIdent = toks.size();
  };
  for (std::size_t k = open; k <= close && k < toks.size(); ++k) {
    if (isPunct(toks[k], "(")) ++depth;
    if (isPunct(toks[k], ")")) --depth;
    if (depth == 1 && isPunct(toks[k], ",")) {
      flush();
      continue;
    }
    if (depth >= 1 && toks[k].kind == TokKind::kIdent) lastIdent = k;
  }
  flush();
  return mutexes;
}

void lockFinding(std::string_view path, int line, std::string message,
                 std::string hint, std::vector<Finding>& out) {
  Finding f;
  f.file = std::string(path);
  f.line = line;
  f.rule = std::string(kRuleLockDiscipline);
  f.message = std::move(message);
  f.hint = std::move(hint);
  out.push_back(std::move(f));
}

void extractLockFacts(std::string_view path, const std::vector<Token>& toks,
                      const std::vector<int>& depths, FileFacts& out) {
  std::vector<LiveLock> live;
  for (std::size_t k = 0; k < toks.size(); ++k) {
    if (isPunct(toks[k], "}")) {
      const int d = depths[k];
      std::erase_if(live, [d](const LiveLock& l) { return l.depth > d; });
      continue;
    }

    // Guard declaration: [std ::] lock_guard [<...>] name ( mutexes... )
    if (toks[k].kind == TokKind::kIdent && isGuardType(toks[k].text)) {
      std::size_t j = k + 1;
      if (j < toks.size() && isPunct(toks[j], "<")) {
        j = matchForward(toks, j, "<", ">");
        if (j >= toks.size()) continue;
        ++j;
      }
      // The guard variable name, then its constructor argument list.
      if (j + 1 >= toks.size() || toks[j].kind != TokKind::kIdent ||
          !isPunct(toks[j + 1], "(")) {
        continue;
      }
      const std::size_t open = j + 1;
      const std::size_t close = matchForward(toks, open, "(", ")");
      if (close >= toks.size()) continue;
      bool deferred = false;
      const std::vector<std::string> mutexes =
          guardMutexes(toks, open, close, &deferred);
      if (deferred) continue;
      const int declDepth = depths[j];
      const int line = toks[k].line;
      for (const std::string& m : mutexes) {
        for (const LiveLock& held : live) {
          if (held.mutex == m) {
            lockFinding(path, line,
                        "double lock of mutex '" + m +
                            "' (already held since line " +
                            std::to_string(held.line) + ")",
                        "locking a non-recursive std::mutex twice on one "
                        "thread is undefined behavior; split the critical "
                        "sections or pass the guard down",
                        out.lockFindings);
          } else {
            out.lockOrder.push_back({held.mutex, m, line});
          }
        }
      }
      for (const std::string& m : mutexes) {
        live.push_back({m, line, declDepth});
      }
      k = close;
      continue;
    }

    if (live.empty() || toks[k].kind != TokKind::kIdent) continue;

    // Blocking constructs while at least one lock is live. The innermost
    // (most recently acquired) lock names the finding.
    const std::string& held = live.back().mutex;
    const int heldLine = live.back().line;
    const bool memberCall =
        k >= 1 && (isPunct(toks[k - 1], ".") || isPunct(toks[k - 1], "->"));
    const bool qualified = k >= 1 && isPunct(toks[k - 1], "::");
    const bool calls = k + 1 < toks.size() && isPunct(toks[k + 1], "(");
    std::string what;
    if (toks[k].text == "parallelFor" && calls && !memberCall) {
      what = "parallelFor(...)";
    } else if (toks[k].text == "join" && calls && memberCall) {
      what = ".join()";
    } else if (toks[k].text == "sleep_for" && calls) {
      what = "sleep_for(...)";
    } else if (calls && !memberCall && !qualified &&
               isBlockingFreeCall(toks[k].text)) {
      what = std::string(toks[k].text) + "(...)";
    } else if (!memberCall && isFileStreamType(toks[k].text)) {
      what = "std::" + std::string(toks[k].text) + " file I/O";
    }
    if (!what.empty()) {
      lockFinding(path, toks[k].line,
                  "blocking call " + what + " while mutex '" + held +
                      "' is held (locked at line " +
                      std::to_string(heldLine) + ")",
                  "shrink the critical section: copy shared state out under "
                  "the lock and do I/O / joins / parallelFor after release",
                  out.lockFindings);
    }
  }
}

void extractIdentFacts(const std::vector<Token>& toks, FileFacts& out) {
  for (std::size_t k = 0; k < toks.size(); ++k) {
    if (toks[k].kind != TokKind::kString) continue;
    std::string_view body = literalBody(toks[k].text);
    if (body.empty() || body.size() > 80) continue;

    // A fault *spec* ("lef.io:1", "step3.deadline:p0.5:s7") mentions the
    // point name before the first ':'.
    std::string_view nameView = body;
    const std::size_t colon = body.find(':');
    const bool hasSpecSuffix = colon != std::string_view::npos;
    if (hasSpecSuffix) nameView = body.substr(0, colon);

    /// Macro call context: `MACRO ( "literal"` — the literal is the name
    /// argument of an emission site.
    const bool atMacroArg = k >= 2 && isPunct(toks[k - 1], "(") &&
                            toks[k - 2].kind == TokKind::kIdent;
    const std::string_view macro = atMacroArg ? toks[k - 2].text : "";

    if (!hasSpecSuffix && isStableErrorCode(body)) {
      out.idents.push_back(
          {IdentClass::kErrorCode, std::string(body), toks[k].line, true});
      continue;
    }
    if (!isDottedLowerName(nameView)) continue;
    if (isValidMetricName(nameView)) {
      out.idents.push_back({IdentClass::kMetricName, std::string(nameView),
                            toks[k].line,
                            !hasSpecSuffix && isObsMetricMacro(macro)});
      continue;
    }
    if (nameView.substr(0, 4) == "pao.") continue;  // malformed metric name
    out.idents.push_back({IdentClass::kFaultPoint, std::string(nameView),
                          toks[k].line,
                          !hasSpecSuffix && isFaultMacro(macro)});
  }
}

}  // namespace

bool isStableErrorCode(std::string_view s) {
  if (s.size() != 6) return false;
  const std::string_view prefix = s.substr(0, 3);
  if (prefix != "SRV" && prefix != "DEF" && prefix != "LEX" &&
      prefix != "GEN") {
    return false;
  }
  return isDigitCh(s[3]) && isDigitCh(s[4]) && isDigitCh(s[5]);
}

bool isDottedLowerName(std::string_view s) {
  std::size_t segments = 0;
  std::size_t start = 0;
  while (true) {
    const std::size_t dot = s.find('.', start);
    const std::string_view seg = dot == std::string_view::npos
                                     ? s.substr(start)
                                     : s.substr(start, dot - start);
    if (seg.empty()) return false;
    for (const char c : seg) {
      if (!isLower(c) && !isDigitCh(c) && c != '_') return false;
    }
    ++segments;
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  return segments >= 2;
}

bool isValidMetricName(std::string_view name) {
  std::size_t segments = 0;
  std::size_t start = 0;
  while (true) {
    const std::size_t dot = name.find('.', start);
    const std::string_view seg =
        dot == std::string_view::npos ? name.substr(start)
                                      : name.substr(start, dot - start);
    if (seg.empty()) return false;
    for (const char c : seg) {
      if (!isLower(c) && !isDigitCh(c) && c != '_') return false;
    }
    ++segments;
    if (segments == 1 && seg != "pao") return false;
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  return segments >= 3;
}

FileFacts extractFacts(std::string_view path, const LexResult& lexed) {
  FileFacts out;
  out.path = std::string(path);
  out.includes = lexed.includes;
  out.suppressions = lexed.suppressions;
  const std::vector<int> depths = braceDepths(lexed.tokens);
  extractLockFacts(path, lexed.tokens, depths, out);
  extractIdentFacts(lexed.tokens, out);
  return out;
}

}  // namespace pao::lint
