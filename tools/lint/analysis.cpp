#include "lint/analysis.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <utility>

namespace pao::lint {

namespace {

// ---------------------------------------------------------------------------
// layering
// ---------------------------------------------------------------------------

/// The module DAG, flattened to ranks. An include may only point at a
/// *strictly lower* rank (or the includer's own module); equal-rank
/// distinct modules are siblings and must not include each other. `obs` is
/// rank 0 — includable from anywhere — precisely because it must itself
/// include nothing (its only dependencies are the standard library and
/// Threads, see DESIGN.md "Observability").
struct ModuleRank {
  std::string_view module;
  int rank;
};
constexpr ModuleRank kModuleRanks[] = {
    {"obs", 0}, {"util", 1},     {"geom", 2}, {"db", 3},     {"lefdef", 4},
    {"drc", 5}, {"benchgen", 5}, {"pao", 6},  {"viz", 6},    {"router", 7},
    {"serve", 8},
};

int rankOfModule(std::string_view module) {
  for (const ModuleRank& m : kModuleRanks) {
    if (m.module == module) return m.rank;
  }
  return -1;
}

/// "src/drc/engine.cpp" (or ".../repo/src/drc/engine.cpp") -> "drc".
/// Anything not under a src/<module>/ directory is unconstrained.
std::string_view moduleOfFile(std::string_view path) {
  std::size_t at = 0;
  while (true) {
    const std::size_t hit = path.find("src/", at);
    if (hit == std::string_view::npos) return {};
    if (hit == 0 || path[hit - 1] == '/') {
      const std::size_t modBegin = hit + 4;
      const std::size_t slash = path.find('/', modBegin);
      if (slash == std::string_view::npos) return {};
      const std::string_view mod = path.substr(modBegin, slash - modBegin);
      if (rankOfModule(mod) >= 0) return mod;
      return {};
    }
    at = hit + 1;
  }
}

/// "geom/polygon.hpp" -> "geom" when geom is a ranked module; project
/// includes are relative to src/ (the tree's single include root besides
/// tools/, whose "lint/..." headers are not ranked).
std::string_view moduleOfInclude(std::string_view includePath) {
  const std::size_t slash = includePath.find('/');
  if (slash == std::string_view::npos) return {};
  const std::string_view mod = includePath.substr(0, slash);
  return rankOfModule(mod) >= 0 ? mod : std::string_view{};
}

void checkLayering(const FileFacts& file, std::vector<Finding>& out) {
  const std::string_view fromMod = moduleOfFile(file.path);
  if (fromMod.empty()) return;
  const int fromRank = rankOfModule(fromMod);
  for (const IncludeDirective& inc : file.includes) {
    if (inc.angled) continue;
    const std::string_view toMod = moduleOfInclude(inc.path);
    if (toMod.empty() || toMod == fromMod) continue;
    const int toRank = rankOfModule(toMod);
    if (toRank < fromRank) continue;
    Finding f;
    f.file = file.path;
    f.line = inc.line;
    f.rule = std::string(kRuleLayering);
    if (toRank == fromRank) {
      f.message = "include of \"" + inc.path + "\" violates module layering: '" +
                  std::string(toMod) + "' and '" + std::string(fromMod) +
                  "' are rank-" + std::to_string(toRank) +
                  " siblings and must not include each other";
    } else {
      f.message = "include of \"" + inc.path + "\" violates module layering: '" +
                  std::string(toMod) + "' (rank " + std::to_string(toRank) +
                  ") is not below '" + std::string(fromMod) + "' (rank " +
                  std::to_string(fromRank) + ")";
    }
    f.hint =
        "allowed dependency direction is util -> geom -> db -> lefdef -> "
        "{drc, benchgen} -> {pao, viz} -> router -> serve, with obs "
        "includable from anywhere; invert the dependency or move the shared "
        "piece down the DAG";
    out.push_back(std::move(f));
  }
}

// ---------------------------------------------------------------------------
// lock-discipline: cross-file acquisition-order inversion
// ---------------------------------------------------------------------------

struct OrderSite {
  std::string file;
  int line = 0;
};

void checkLockOrder(const std::vector<FileFacts>& files,
                    std::vector<Finding>& out) {
  // (first, second) -> every site where `second` was acquired under `first`.
  std::map<std::pair<std::string, std::string>, std::vector<OrderSite>> edges;
  for (const FileFacts& file : files) {
    for (const LockOrderEdge& e : file.lockOrder) {
      edges[{e.first, e.second}].push_back({file.path, e.line});
    }
  }
  for (const auto& [pair, sites] : edges) {
    if (pair.first >= pair.second) continue;  // visit each unordered pair once
    const auto inverse = edges.find({pair.second, pair.first});
    if (inverse == edges.end()) continue;
    const auto emit = [&](const OrderSite& here, const std::string& inner,
                          const std::string& outer, const OrderSite& there) {
      Finding f;
      f.file = here.file;
      f.line = here.line;
      f.rule = std::string(kRuleLockDiscipline);
      f.message = "mutex '" + inner + "' is acquired while '" + outer +
                  "' is held here, but the opposite order occurs at " +
                  there.file + ":" + std::to_string(there.line) +
                  " — inconsistent acquisition order can deadlock";
      f.hint =
          "pick one global order for this mutex pair (or acquire both via a "
          "single std::scoped_lock) and use it at every site";
      out.push_back(std::move(f));
    };
    emit(sites.front(), pair.second, pair.first, inverse->second.front());
    emit(inverse->second.front(), pair.first, pair.second, sites.front());
  }
}

// ---------------------------------------------------------------------------
// catalog-drift
// ---------------------------------------------------------------------------

bool isDocIdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}
bool isDocMetricChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' ||
         c == '.';
}

std::string_view trimDoc(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '`')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '`' ||
          s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

/// What the design document declares, each name mapped to the 1-based line
/// of its first appearance.
struct DocCatalog {
  std::map<std::string, int> codes;
  std::map<std::string, int> metrics;
  std::map<std::string, int> faults;
};

/// Extraction is shape-driven where the shape is unambiguous (error codes
/// and pao.* metric names, collected from anywhere in the document) and
/// position-driven where it is not: fault-point names are plain dotted
/// words, so only the first cell of markdown table rows under a heading
/// containing "fault" counts — prose and trace-span names never register.
DocCatalog parseDesignDoc(std::string_view text) {
  DocCatalog out;
  int lineNo = 0;
  bool underFaultHeading = false;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? text.size() - pos
                                                       : eol - pos);
    ++lineNo;

    if (!line.empty() && line.front() == '#') {
      std::string lowered(line);
      std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      underFaultHeading = lowered.find("fault") != std::string::npos;
    }

    // Error codes: boundary-delimited PREnnn tokens, anywhere.
    for (std::size_t i = 0; i < line.size();) {
      if (!isDocIdentChar(line[i])) {
        ++i;
        continue;
      }
      std::size_t j = i;
      while (j < line.size() && isDocIdentChar(line[j])) ++j;
      const std::string_view word = line.substr(i, j - i);
      if (isStableErrorCode(word)) {
        out.codes.emplace(std::string(word), lineNo);
      }
      i = j;
    }

    // Metric names: maximal [a-z0-9_.] runs, anywhere, trimmed of the
    // sentence punctuation dots they may abut.
    for (std::size_t i = 0; i < line.size();) {
      if (!isDocMetricChar(line[i])) {
        ++i;
        continue;
      }
      std::size_t j = i;
      while (j < line.size() && isDocMetricChar(line[j])) ++j;
      std::string_view run = line.substr(i, j - i);
      while (!run.empty() && run.front() == '.') run.remove_prefix(1);
      while (!run.empty() && run.back() == '.') run.remove_suffix(1);
      if (isValidMetricName(run)) {
        out.metrics.emplace(std::string(run), lineNo);
      }
      i = j;
    }

    // Fault points: first cell of table rows in fault sections.
    const std::string_view trimmed = trimDoc(line);
    if (underFaultHeading && !trimmed.empty() && trimmed.front() == '|') {
      const std::size_t cellEnd = trimmed.find('|', 1);
      if (cellEnd != std::string_view::npos) {
        const std::string_view cell =
            trimDoc(trimmed.substr(1, cellEnd - 1));
        if (isDottedLowerName(cell) && !isValidMetricName(cell) &&
            cell.substr(0, 4) != "pao.") {
          out.faults.emplace(std::string(cell), lineNo);
        }
      }
    }

    if (eol == std::string_view::npos) break;
    pos = eol + 1;
  }
  return out;
}

std::string_view identClassNoun(IdentClass klass) {
  switch (klass) {
    case IdentClass::kErrorCode:
      return "error code";
    case IdentClass::kFaultPoint:
      return "fault point";
    case IdentClass::kMetricName:
      return "metric";
  }
  return "identifier";
}

std::string_view identCatalogName(IdentClass klass) {
  switch (klass) {
    case IdentClass::kErrorCode:
      return "error-code tables";
    case IdentClass::kFaultPoint:
      return "fault-point catalog";
    case IdentClass::kMetricName:
      return "metric catalog";
  }
  return "catalogs";
}

void checkCatalogDrift(const std::vector<FileFacts>& files,
                       const Options& options, std::vector<Finding>& out) {
  if (options.designDocText.empty()) return;
  const DocCatalog doc = parseDesignDoc(options.designDocText);
  const std::string docPath =
      options.designDocPath.empty() ? "DESIGN.md" : options.designDocPath;

  const auto docSet = [&doc](IdentClass klass) -> const std::map<std::string, int>& {
    switch (klass) {
      case IdentClass::kErrorCode:
        return doc.codes;
      case IdentClass::kFaultPoint:
        return doc.faults;
      case IdentClass::kMetricName:
      default:
        return doc.metrics;
    }
  };

  // Direction 1: strong emission sites must be documented. Exempt paths
  // (tests by default) register scratch identifiers on purpose.
  std::set<std::string> aliveByClass[3];
  for (const FileFacts& file : files) {
    bool exempt = false;
    for (const std::string& sub : options.catalogExemptSubstrings) {
      if (file.path.find(sub) != std::string::npos) {
        exempt = true;
        break;
      }
    }
    for (const IdentUse& use : file.idents) {
      aliveByClass[static_cast<int>(use.klass)].insert(use.name);
      if (!use.strong || exempt) continue;
      const std::map<std::string, int>& known = docSet(use.klass);
      if (known.count(use.name) != 0) continue;
      Finding f;
      f.file = file.path;
      f.line = use.line;
      f.rule = std::string(kRuleCatalogDrift);
      f.message = std::string(identClassNoun(use.klass)) + " '" + use.name +
                  "' is emitted here but missing from the " + docPath + " " +
                  std::string(identCatalogName(use.klass));
      f.hint = "document it in the " + std::string(identCatalogName(use.klass)) +
               " (the doc is API — tools and tests key off it), or switch "
               "this site to a documented identifier";
      out.push_back(std::move(f));
    }
  }

  // Direction 2: every catalog entry must still be alive in code — any
  // mention counts, strong or weak, exempt paths included.
  const auto checkDead = [&](const std::map<std::string, int>& known,
                             IdentClass klass) {
    const std::set<std::string>& alive = aliveByClass[static_cast<int>(klass)];
    for (const auto& [name, docLine] : known) {
      if (alive.count(name) != 0) continue;
      Finding f;
      f.file = docPath;
      f.line = docLine;
      f.rule = std::string(kRuleCatalogDrift);
      f.message = "documented " + std::string(identClassNoun(klass)) + " '" +
                  name + "' has no emission or reference in the scanned tree";
      f.hint = "delete the stale catalog entry, or restore the code that "
               "produced it";
      out.push_back(std::move(f));
    }
  };
  checkDead(doc.codes, IdentClass::kErrorCode);
  checkDead(doc.faults, IdentClass::kFaultPoint);
  checkDead(doc.metrics, IdentClass::kMetricName);
}

}  // namespace

int moduleRankOfFile(std::string_view path) {
  const std::string_view mod = moduleOfFile(path);
  return mod.empty() ? -1 : rankOfModule(mod);
}

int moduleRankOfInclude(std::string_view includePath) {
  const std::string_view mod = moduleOfInclude(includePath);
  return mod.empty() ? -1 : rankOfModule(mod);
}

std::vector<Finding> analyzeTree(const std::vector<FileFacts>& files,
                                 const Options& options) {
  std::vector<Finding> out;
  for (const FileFacts& file : files) {
    checkLayering(file, out);
    for (const Finding& f : file.lockFindings) out.push_back(f);
  }
  checkLockOrder(files, out);
  checkCatalogDrift(files, options, out);
  return out;
}

}  // namespace pao::lint
