// Pass 2 of pao_lint's whole-program analysis: cross-TU aggregation. Takes
// the per-file facts extracted by lint/facts.hpp for *every* file handed to
// the driver and runs the rule families that no single TU can decide:
//
//   layering        project-relative includes checked against the module
//                   DAG (see kModuleRanks in analysis.cpp),
//   lock-discipline (the cross-file half) mutex pairs acquired in both
//                   orders anywhere in the tree,
//   catalog-drift   stable identifiers emitted by code vs the DESIGN.md
//                   catalogs, in both directions.
//
// analyzeTree() is pure: findings come back unsorted and unsuppressed;
// lintTree() in rules.cpp merges them with the per-file results and applies
// suppressions.
#pragma once

#include <string_view>
#include <vector>

#include "lint/facts.hpp"
#include "lint/rules.hpp"

namespace pao::lint {

/// The layering rank of the module owning `path` (a scanned file path, e.g.
/// "src/drc/engine.cpp"), or -1 when the file is unconstrained (tools/,
/// tests/, examples/, bench/ or an unknown module). Exposed for tests.
int moduleRankOfFile(std::string_view path);

/// The layering rank of the module an include directive targets (e.g.
/// "geom/polygon.hpp" -> rank of geom), or -1 when the include is not a
/// project module header. Exposed for tests.
int moduleRankOfInclude(std::string_view includePath);

/// Runs the cross-TU rule families over the aggregate facts. Catalog-drift
/// needs options.designDocText (skipped when empty); dead-in-docs findings
/// are anchored at options.designDocPath with the catalog entry's line.
std::vector<Finding> analyzeTree(const std::vector<FileFacts>& files,
                                 const Options& options);

}  // namespace pao::lint
