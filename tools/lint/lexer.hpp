// Minimal C++ tokenizer for pao_lint. This is not a compiler front end: it
// produces a flat token stream (identifiers, numbers, literals, punctuation)
// with line numbers, strips comments and preprocessor directives, and parses
// `pao-lint: allow(<rule>): <justification>` suppression markers out of the
// comments it strips. The rule passes in rules.cpp work purely on this
// stream plus brace/paren matching — deliberately heuristic, tuned for the
// project's own style (see DESIGN.md "Static analysis & invariants").
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pao::lint {

enum class TokKind : std::uint8_t {
  kIdent,   ///< identifier or keyword
  kNumber,  ///< numeric literal (integer/float, suffixes included)
  kString,  ///< string literal including quotes (raw strings too)
  kChar,    ///< character literal including quotes
  kPunct,   ///< operator/punctuator; multi-char ops like :: -> << are fused
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string_view text;  ///< view into the source buffer passed to lex()
  int line = 0;           ///< 1-based line of the token's first character
};

/// One `pao-lint: allow(<rule>)[: justification]` marker found in a comment.
/// `line` is the line the comment ends on, so a trailing comment covers its
/// own line and a standalone comment covers the line below it.
struct Suppression {
  int line = 0;
  std::string rule;
  std::string justification;  ///< empty when the author gave none (an error)
};

/// One `#include` directive. Quoted project-relative includes (`angled ==
/// false`) are the edges the whole-program `layering` rule checks; angled
/// system includes are recorded but never constrained.
struct IncludeDirective {
  int line = 0;
  std::string path;  ///< the text between the quotes / angle brackets
  bool angled = false;
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
  std::vector<IncludeDirective> includes;
};

/// Tokenizes `src`. The returned tokens view into `src`, which must outlive
/// the result. Handles // and /* */ comments, string/char literals with
/// escapes, raw string literals, and skips preprocessor directive lines
/// (including backslash continuations).
LexResult lex(std::string_view src);

}  // namespace pao::lint
