// Pass 1 of pao_lint's whole-program analysis: per-translation-unit fact
// extraction. extractFacts() walks one lexed TU and records everything the
// cross-TU rule families (lint/analysis.hpp) need:
//
//   - project #include edges (for `layering`),
//   - lock-scope structure over a brace/scope tracker: which mutexes a
//     lock_guard/scoped_lock/unique_lock holds and for how long, blocking
//     calls made while a lock is live, nested acquisitions (for
//     `lock-discipline`), and the ordered mutex pairs they imply,
//   - stable-identifier literals: SRVnnn/DEFnnn/LEXnnn/GENnnn error codes,
//     PAO_FAULTS point names, and pao.* metric names (for `catalog-drift`).
//
// Per-TU lock findings (blocking-while-held, double-lock) are complete after
// pass 1 and are returned here; everything else is aggregated by
// analyzeTree() in pass 2.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "lint/lexer.hpp"
#include "lint/rules.hpp"

namespace pao::lint {

/// The stable-identifier namespaces the catalog-drift rule audits.
enum class IdentClass : std::uint8_t {
  kErrorCode,   ///< SRVnnn / DEFnnn / LEXnnn / GENnnn
  kFaultPoint,  ///< dotted lowercase, non-pao. (e.g. "serve.accept")
  kMetricName,  ///< pao.<phase>.<metric>
};

/// One appearance of a stable identifier in a TU. Strong uses are
/// definition/emission sites — a string literal directly inside an obs
/// metric macro or a PAO_FAULT_POINT/PAO_FAULT_INJECT hook, or any error
/// code literal. Weak uses are every other mention (test expectations,
/// fault specs like "lef.io:1", registry lookups): they count as "alive in
/// code" for the dead-in-docs direction but are never required to be
/// documented themselves.
struct IdentUse {
  IdentClass klass = IdentClass::kErrorCode;
  std::string name;
  int line = 0;
  bool strong = false;
};

/// `second` was acquired while `first` was still held, at `line`. Pass 2
/// flags mutex pairs observed in both orders anywhere in the tree.
struct LockOrderEdge {
  std::string first;
  std::string second;
  int line = 0;
};

struct FileFacts {
  std::string path;
  std::vector<IncludeDirective> includes;
  std::vector<Suppression> suppressions;
  std::vector<IdentUse> idents;
  std::vector<LockOrderEdge> lockOrder;
  /// lock-discipline findings decidable within one TU: a blocking call made
  /// while a lock is live, and double-lock of one mutex. Cross-file order
  /// inversion lives in pass 2.
  std::vector<Finding> lockFindings;
};

/// Extracts every fact from one lexed TU. `lexed` must outlive nothing —
/// all returned strings are owned copies.
FileFacts extractFacts(std::string_view path, const LexResult& lexed);

/// True when `name` is shaped like a metric name: `pao.` + >= 2 further
/// dot-separated non-empty [a-z0-9_] segments. Shared with the obs-naming
/// rule.
bool isValidMetricName(std::string_view name);

/// True for ^(SRV|DEF|LEX|GEN)[0-9]{3}$ — the stable error-code shape.
bool isStableErrorCode(std::string_view s);

/// True for dotted lowercase [a-z0-9_] with >= 2 non-empty segments — the
/// shape shared by fault-point and trace-span names.
bool isDottedLowerName(std::string_view s);

}  // namespace pao::lint
