#include "lint/rules.hpp"

#include <algorithm>
#include <fstream>
#include <iterator>
#include <set>
#include <sstream>

#include "lint/analysis.hpp"
#include "lint/facts.hpp"
#include "lint/lexer.hpp"
#include "lint/token_match.hpp"

namespace pao::lint {

namespace {

// ---------------------------------------------------------------------------
// Rule: unordered-iteration
// ---------------------------------------------------------------------------

/// Names of variables declared in this file with an unordered container
/// type. Purely lexical: `unordered_map<...>` (template args balanced) then
/// past any `&`/`*`/cv tokens, an identifier.
std::set<std::string_view> collectUnorderedNames(
    const std::vector<Token>& toks) {
  std::set<std::string_view> names;
  for (std::size_t k = 0; k < toks.size(); ++k) {
    if (!isIdent(toks[k], "unordered_map") &&
        !isIdent(toks[k], "unordered_set")) {
      continue;
    }
    std::size_t j = k + 1;
    if (j >= toks.size() || !isPunct(toks[j], "<")) continue;
    int angle = 0;
    for (; j < toks.size(); ++j) {
      if (isPunct(toks[j], "<")) ++angle;
      if (isPunct(toks[j], ">") && --angle == 0) break;
      if (isPunct(toks[j], ";")) break;  // gave up: not a simple type
    }
    if (j >= toks.size() || angle != 0) continue;
    ++j;
    while (j < toks.size() &&
           (isPunct(toks[j], "&") || isPunct(toks[j], "*") ||
            isIdent(toks[j], "const"))) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == TokKind::kIdent) {
      names.insert(toks[j].text);
    }
  }
  return names;
}

void ruleUnorderedIteration(std::string_view path,
                            const std::vector<Token>& toks,
                            const std::vector<int>& depths,
                            std::vector<Finding>& out) {
  const std::set<std::string_view> names = collectUnorderedNames(toks);
  for (std::size_t k = 0; k + 1 < toks.size(); ++k) {
    if (!isIdent(toks[k], "for") || !isPunct(toks[k + 1], "(")) continue;
    const std::size_t cp = matchForward(toks, k + 1, "(", ")");
    if (cp >= toks.size()) continue;
    // The range-for colon sits at paren depth 1 (`::` is a distinct token).
    std::size_t colon = toks.size();
    int pd = 0;
    for (std::size_t j = k + 1; j < cp; ++j) {
      if (isPunct(toks[j], "(")) ++pd;
      if (isPunct(toks[j], ")")) --pd;
      if (pd == 1 && isPunct(toks[j], ":")) {
        colon = j;
        break;
      }
    }
    if (colon >= toks.size()) continue;
    std::string_view container;
    for (std::size_t j = colon + 1; j < cp; ++j) {
      if (toks[j].kind != TokKind::kIdent) continue;
      if (names.count(toks[j].text) != 0 ||
          toks[j].text == "unordered_map" || toks[j].text == "unordered_set") {
        container = toks[j].text;
        break;
      }
    }
    if (container.empty()) continue;
    // Loop body: a brace block or a single statement up to `;`.
    std::size_t bodyBegin = cp + 1;
    std::size_t bodyEnd;
    if (bodyBegin < toks.size() && isPunct(toks[bodyBegin], "{")) {
      bodyEnd = matchForward(toks, bodyBegin, "{", "}");
    } else {
      bodyEnd = bodyBegin;
      while (bodyEnd < toks.size() && !isPunct(toks[bodyEnd], ";")) ++bodyEnd;
    }
    bool writes = false;
    for (std::size_t j = bodyBegin; j < bodyEnd && j < toks.size(); ++j) {
      if (isPunct(toks[j], "<<") || isIdent(toks[j], "push_back") ||
          isIdent(toks[j], "emplace_back")) {
        writes = true;
        break;
      }
    }
    if (!writes) continue;
    // Look for a canonical sort in the remainder of the enclosing block.
    bool sorted = false;
    const int forDepth = depths[k];
    for (std::size_t j = bodyEnd; j < toks.size() && depths[j] >= forDepth;
         ++j) {
      if (toks[j].kind == TokKind::kIdent &&
          toks[j].text.find("sort") != std::string_view::npos) {
        sorted = true;
        break;
      }
    }
    if (sorted) continue;
    Finding f;
    f.file = std::string(path);
    f.line = toks[k].line;
    f.rule = std::string(kRuleUnorderedIteration);
    f.message = "iteration over unordered container '" +
                std::string(container) +
                "' writes output in hash order with no later sort";
    f.hint =
        "sort the collected results canonically after the loop (cf. "
        "DrcEngine::checkAll's violationLess) or iterate a sorted copy";
    out.push_back(std::move(f));
  }
}

// ---------------------------------------------------------------------------
// Rule: pointer-stability
// ---------------------------------------------------------------------------

/// std::vector calls that can reallocate (invalidating prior references into
/// the same container). pop_back only invalidates the popped element and is
/// left out to avoid noise.
bool isGrowthCall(std::string_view m) {
  return m == "push_back" || m == "emplace_back" || m == "resize" ||
         m == "reserve" || m == "insert" || m == "emplace" || m == "clear" ||
         m == "assign";
}
/// vector members whose result commonly gets bound to a long-lived
/// reference.
bool isRefYieldingVectorCall(std::string_view m) {
  return m == "emplace_back" || m == "back" || m == "front";
}

struct Binding {
  std::string_view name;
  std::string recv;        ///< normalized receiver chain, e.g. "tech"
  std::string group;       ///< annotation group or "vec:" + recv
  std::string declMethod;  ///< accessor that produced the reference
  std::size_t nameTok = 0;
  int declDepth = 0;
  int invalidLine = 0;     ///< 0 while still valid
  std::string invalidCall;
  bool reported = false;
};

void rulePointerStability(std::string_view path,
                          const std::vector<Token>& toks,
                          const std::vector<int>& depths,
                          const Options& options, std::vector<Finding>& out) {
  std::vector<Binding> bindings;
  const auto annotationGroup =
      [&options](std::string_view m) -> const std::string* {
    for (const AccessorAnnotation& a : options.accessors) {
      if (a.method == m) return &a.group;
    }
    return nullptr;
  };

  for (std::size_t k = 0; k < toks.size(); ++k) {
    // Scope exit drops bindings declared deeper.
    if (isPunct(toks[k], "}")) {
      const int d = depths[k];
      std::erase_if(bindings,
                    [d](const Binding& b) { return b.declDepth > d; });
    }

    // Method call on a receiver: recv.m( / recv->m(
    const bool isCall =
        k >= 2 && k + 1 < toks.size() && toks[k].kind == TokKind::kIdent &&
        isPunct(toks[k + 1], "(") &&
        (isPunct(toks[k - 1], ".") || isPunct(toks[k - 1], "->"));
    if (isCall) {
      const std::string_view m = toks[k].text;
      const std::string* annGroup = annotationGroup(m);
      if (annGroup != nullptr || isGrowthCall(m)) {
        const Receiver recv = receiverChain(toks, k - 2);
        const std::string group =
            annGroup != nullptr ? *annGroup : "vec:" + recv.chain;
        // This call may reallocate: invalidate live same-group bindings.
        for (Binding& b : bindings) {
          if (b.invalidLine == 0 && b.group == group && b.recv == recv.chain) {
            b.invalidLine = toks[k].line;
            b.invalidCall = recv.chain + "." + std::string(m) + "()";
          }
        }
        // ...and if its result is bound by reference/pointer, start
        // tracking the new binding:  T& name = recv.m(...)   or
        // T* name = &recv.m(...)
        if (annGroup != nullptr || isRefYieldingVectorCall(m)) {
          const std::size_t s = recv.begin;
          std::size_t nameTok = toks.size();
          if (s >= 3 && isPunct(toks[s - 1], "=") &&
              toks[s - 2].kind == TokKind::kIdent &&
              isPunct(toks[s - 3], "&")) {
            nameTok = s - 2;
          } else if (s >= 4 && isPunct(toks[s - 1], "&") &&
                     isPunct(toks[s - 2], "=") &&
                     toks[s - 3].kind == TokKind::kIdent &&
                     isPunct(toks[s - 4], "*")) {
            nameTok = s - 3;
          }
          if (nameTok < toks.size()) {
            // Rebinding a tracked name replaces the old binding.
            std::erase_if(bindings, [&](const Binding& b) {
              return b.name == toks[nameTok].text;
            });
            Binding b;
            b.name = toks[nameTok].text;
            b.recv = recv.chain;
            b.group = group;
            b.declMethod = std::string(m);
            b.nameTok = nameTok;
            b.declDepth = depths[nameTok];
            bindings.push_back(std::move(b));
          }
        }
        continue;
      }
    }

    // Use of a tracked name after invalidation.
    if (toks[k].kind != TokKind::kIdent) continue;
    // Member accesses like foo.name are a different entity.
    if (k >= 1 && (isPunct(toks[k - 1], ".") || isPunct(toks[k - 1], "->") ||
                   isPunct(toks[k - 1], "::"))) {
      continue;
    }
    for (Binding& b : bindings) {
      if (b.name != toks[k].text || k == b.nameTok) continue;
      // `Type& name = other;` rebinding to something untracked: drop it.
      if (k >= 1 && k + 1 < toks.size() && isPunct(toks[k - 1], "&") &&
          isPunct(toks[k + 1], "=")) {
        b = bindings.back();
        bindings.pop_back();
        break;
      }
      if (b.invalidLine != 0 && !b.reported) {
        b.reported = true;
        Finding f;
        f.file = std::string(path);
        f.line = toks[k].line;
        f.rule = std::string(kRulePointerStability);
        f.message = "'" + std::string(b.name) + "' (reference from " +
                    b.recv + "." + b.declMethod + "()) used after " +
                    b.invalidCall + " on line " +
                    std::to_string(b.invalidLine) +
                    ", which may reallocate the backing storage";
        f.hint =
            "re-acquire the element after the growth call, keep an index "
            "instead, or move the container to stable (deque/node) storage";
        out.push_back(std::move(f));
      }
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: executor-hygiene
// ---------------------------------------------------------------------------

bool pathEndsWith(std::string_view path, std::string_view suffix) {
  return path.size() >= suffix.size() &&
         path.substr(path.size() - suffix.size()) == suffix;
}

/// Blocking socket primitives that must never run on a parallelFor worker:
/// the serve event loop is the sole socket owner, and a worker blocked in
/// read/send holds its dispatch slot hostage for the whole batch.
bool isSocketIoCall(std::string_view name) {
  return name == "read" || name == "write" || name == "send" ||
         name == "recv" || name == "sendto" || name == "recvfrom" ||
         name == "sendmsg" || name == "recvmsg" || name == "accept" ||
         name == "accept4" || name == "connect" || name == "poll" ||
         name == "select" || name == "epoll_wait";
}

void ruleExecutorHygiene(std::string_view path, const std::vector<Token>& toks,
                         const Options& options, std::vector<Finding>& out) {
  bool exemptRawThread = false;
  for (const std::string& sfx : options.rawThreadExemptSuffixes) {
    if (pathEndsWith(path, sfx)) exemptRawThread = true;
  }
  bool banSocketIo = false;
  for (const std::string& sub : options.socketIoBanSubstrings) {
    if (path.find(sub) != std::string_view::npos) banSocketIo = true;
  }
  for (std::size_t k = 0; k + 2 < toks.size(); ++k) {
    if (isIdent(toks[k], "std") && isPunct(toks[k + 1], "::") &&
        (isIdent(toks[k + 2], "thread") || isIdent(toks[k + 2], "jthread") ||
         isIdent(toks[k + 2], "async"))) {
      // std::thread::hardware_concurrency and friends are queries, not
      // thread creation.
      if (k + 3 < toks.size() && isPunct(toks[k + 3], "::")) continue;
      if (exemptRawThread) continue;
      Finding f;
      f.file = std::string(path);
      f.line = toks[k].line;
      f.rule = std::string(kRuleExecutorHygiene);
      f.message = "raw std::" + std::string(toks[k + 2].text) +
                  " outside src/util/executor.*";
      f.hint =
          "route parallelism through util::parallelFor so the determinism "
          "and nested-call contracts hold";
      out.push_back(std::move(f));
    }
    // Worker-body scans cover both submission APIs: parallelFor call
    // arguments and job-graph addJob/addJobRange arguments (the inline
    // lambda that becomes a node body). Declarations match too, but their
    // parameter lists carry none of the flagged tokens.
    const bool isParallelForCall = isIdent(toks[k], "parallelFor");
    const bool isJobSubmit =
        isIdent(toks[k], "addJob") || isIdent(toks[k], "addJobRange");
    if ((isParallelForCall || isJobSubmit) && k + 1 < toks.size() &&
        isPunct(toks[k + 1], "(")) {
      const std::size_t cp = matchForward(toks, k + 1, "(", ")");
      for (std::size_t j = k + 2; j < cp && j < toks.size(); ++j) {
        if (isIdent(toks[j], "mutable")) {
          Finding f;
          f.file = std::string(path);
          f.line = toks[j].line;
          f.rule = std::string(kRuleExecutorHygiene);
          f.message = isParallelForCall
                          ? "mutable-capture lambda passed to parallelFor"
                          : "mutable-capture lambda submitted to the job "
                            "graph";
          f.hint =
              "write each task's result into a pre-sized slot instead of "
              "mutating captured state; slot writes keep results "
              "schedule-independent";
          out.push_back(std::move(f));
          continue;
        }
        if (isJobSubmit && isIdent(toks[j], "parallelFor")) {
          // A parallelFor inside a node body degrades to serial under the
          // nested-run rule, silently flattening the intended parallelism.
          Finding f;
          f.file = std::string(path);
          f.line = toks[j].line;
          f.rule = std::string(kRuleExecutorHygiene);
          f.message = "raw parallelFor inside a job-node body";
          f.hint =
              "nested parallel sections degrade to serial; add the inner "
              "iterations as graph jobs and express the ordering as "
              "dependency edges instead";
          out.push_back(std::move(f));
          continue;
        }
        if (banSocketIo && toks[j].kind == TokKind::kIdent &&
            isSocketIoCall(toks[j].text) && j + 1 < toks.size() &&
            isPunct(toks[j + 1], "(")) {
          // Member/qualified calls (conn.read(...), Foo::send(...)) are a
          // different function; only free calls hit the socket API.
          if (j > 0 && (isPunct(toks[j - 1], ".") ||
                        isPunct(toks[j - 1], "->") ||
                        isPunct(toks[j - 1], "::"))) {
            continue;
          }
          Finding f;
          f.file = std::string(path);
          f.line = toks[j].line;
          f.rule = std::string(kRuleExecutorHygiene);
          f.message = "blocking socket call '" + std::string(toks[j].text) +
                      (isParallelForCall
                           ? "' inside a parallelFor worker in service code"
                           : "' inside a job-graph node in service code");
          f.hint =
              "only the epoll event loop in src/serve/server.cpp may touch "
              "sockets; workers compute response strings and the loop "
              "flushes them";
          out.push_back(std::move(f));
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: obs-naming
// ---------------------------------------------------------------------------

bool isObsMetricMacro(std::string_view m) {
  return m == "PAO_COUNTER_ADD" || m == "PAO_COUNTER_INC" ||
         m == "PAO_GAUGE_SET" || m == "PAO_HISTOGRAM_OBSERVE";
}

/// Checks string literals passed as the name argument of the observability
/// macros. Names built at runtime (non-literal first argument) are skipped:
/// the registry sorts whatever it gets, but the convention can only be
/// enforced statically on literals — which is how every call site in the
/// tree spells them. The macro *definitions* in obs/metrics.hpp live on
/// preprocessor lines, which the lexer strips, so they are never scanned.
void ruleObsNaming(std::string_view path, const std::vector<Token>& toks,
                   std::vector<Finding>& out) {
  for (std::size_t k = 0; k + 2 < toks.size(); ++k) {
    if (toks[k].kind != TokKind::kIdent || !isObsMetricMacro(toks[k].text)) {
      continue;
    }
    if (!isPunct(toks[k + 1], "(")) continue;
    const Token& arg = toks[k + 2];
    if (arg.kind != TokKind::kString) continue;
    std::string_view name = arg.text;
    if (name.size() >= 2 && name.front() == '"' && name.back() == '"') {
      name.remove_prefix(1);
      name.remove_suffix(1);
    }
    if (isValidMetricName(name)) continue;
    Finding f;
    f.file = std::string(path);
    f.line = arg.line;
    f.rule = std::string(kRuleObsNaming);
    f.message = "metric name \"" + std::string(name) + "\" passed to " +
                std::string(toks[k].text) +
                " does not follow pao.<phase>.<metric>";
    f.hint =
        "registry names are dotted lowercase [a-z0-9_] with at least three "
        "segments starting with 'pao.' (e.g. pao.step2.pair_checks); see "
        "DESIGN.md \"Observability\"";
    out.push_back(std::move(f));
  }
}

// ---------------------------------------------------------------------------
// Rule: diag-hygiene
// ---------------------------------------------------------------------------

/// Flags `throw std::runtime_error(...)` outside the exempt path set.
/// Library code must raise located, coded errors (lefdef::ParseError with a
/// util::Diag, or a domain exception type) so failures surface as
/// file:line:col diagnostics rather than bare strings.
void ruleDiagHygiene(std::string_view path, const std::vector<Token>& toks,
                     const Options& options, std::vector<Finding>& out) {
  for (const std::string& sub : options.diagHygieneExemptSubstrings) {
    if (path.find(sub) != std::string_view::npos) return;
  }
  for (std::size_t k = 0; k + 4 < toks.size(); ++k) {
    if (!isIdent(toks[k], "throw") || !isIdent(toks[k + 1], "std") ||
        !isPunct(toks[k + 2], "::") ||
        !isIdent(toks[k + 3], "runtime_error") ||
        !isPunct(toks[k + 4], "(")) {
      continue;
    }
    Finding f;
    f.file = std::string(path);
    f.line = toks[k].line;
    f.rule = std::string(kRuleDiagHygiene);
    f.message = "bare throw std::runtime_error in library code";
    f.hint =
        "throw lefdef::ParseError with a located util::Diag (stable code, "
        "file:line:col, excerpt) or a domain exception type; plain "
        "runtime_error is reserved for src/util/, tools/ and tests/";
    out.push_back(std::move(f));
  }
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

/// Marks findings anchored in `path` covered by a justified allow() on the
/// same line or the line above. Findings in other files (lintTree merges
/// tree-wide results before suppressing) are left alone.
void markSuppressed(std::string_view path,
                    const std::vector<Suppression>& sups,
                    std::vector<Finding>& findings) {
  for (Finding& f : findings) {
    if (f.file != path) continue;
    for (const Suppression& s : sups) {
      if (s.rule == f.rule && !s.justification.empty() &&
          (s.line == f.line || s.line == f.line - 1)) {
        f.suppressed = true;
        break;
      }
    }
  }
}

/// Appends a `suppression` finding for every malformed allow() in `path`:
/// unknown rule id or missing justification.
void reportBadSuppressions(std::string_view path,
                           const std::vector<Suppression>& sups,
                           std::vector<Finding>& findings) {
  for (const Suppression& s : sups) {
    Finding f;
    f.file = std::string(path);
    f.line = s.line;
    f.rule = std::string(kRuleSuppression);
    if (!isKnownRule(s.rule)) {
      f.message = "allow() names unknown rule '" + s.rule + "'";
      f.hint = "valid rules: pointer-stability, unordered-iteration, "
               "executor-hygiene, obs-naming, diag-hygiene, layering, "
               "lock-discipline, catalog-drift";
    } else if (s.justification.empty()) {
      f.message = "allow(" + s.rule + ") without a justification";
      f.hint = "suppressions must say why the code is safe: "
               "// pao-lint: allow(" + s.rule + "): <reason>";
    } else {
      continue;
    }
    findings.push_back(std::move(f));
  }
}

/// Runs the five per-file rules over one lexed TU.
void runFileRules(std::string_view path, const LexResult& lexed,
                  const std::vector<int>& depths, const Options& options,
                  std::vector<Finding>& findings) {
  rulePointerStability(path, lexed.tokens, depths, options, findings);
  ruleUnorderedIteration(path, lexed.tokens, depths, findings);
  ruleExecutorHygiene(path, lexed.tokens, options, findings);
  ruleObsNaming(path, lexed.tokens, findings);
  ruleDiagHygiene(path, lexed.tokens, options, findings);
}

}  // namespace

Options::Options() : accessors(defaultAccessors()) {}

std::vector<AccessorAnnotation> defaultAccessors() {
  // Tech::addLayer / Tech::addViaDef once lived here but now return
  // references into deque storage, which never relocates. The remaining
  // entries are util::StringInterner's accessors: viewOf() hands out a
  // reference into the id->view vector and intern() can grow it, so a
  // viewOf reference held across an intern() dangles (the interned BYTES
  // are block-stable; the string_view slot is not).
  return {{"viewOf", "interner"}, {"intern", "interner"}};
}

bool isKnownRule(std::string_view rule) {
  return rule == kRulePointerStability || rule == kRuleUnorderedIteration ||
         rule == kRuleExecutorHygiene || rule == kRuleObsNaming ||
         rule == kRuleDiagHygiene || rule == kRuleLayering ||
         rule == kRuleLockDiscipline || rule == kRuleCatalogDrift;
}

std::vector<Finding> lintSource(std::string_view path, std::string_view src,
                                const Options& options) {
  const LexResult lexed = lex(src);
  const std::vector<int> depths = braceDepths(lexed.tokens);
  std::vector<Finding> findings;
  runFileRules(path, lexed, depths, options, findings);
  markSuppressed(path, lexed.suppressions, findings);
  reportBadSuppressions(path, lexed.suppressions, findings);
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return findings;
}

std::vector<Finding> lintTree(const std::vector<FileInput>& files,
                              const Options& options) {
  std::vector<Finding> findings;
  std::vector<FileFacts> facts;
  facts.reserve(files.size());
  for (const FileInput& in : files) {
    const LexResult lexed = lex(in.src);
    const std::vector<int> depths = braceDepths(lexed.tokens);
    runFileRules(in.path, lexed, depths, options, findings);
    facts.push_back(extractFacts(in.path, lexed));
  }
  std::vector<Finding> tree = analyzeTree(facts, options);
  findings.insert(findings.end(), std::make_move_iterator(tree.begin()),
                  std::make_move_iterator(tree.end()));
  // Suppressions run after the merge so tree-wide findings anchored in a
  // scanned file can be allow()ed at their anchor line like any other.
  // Findings anchored in the design document have no scanned source to
  // carry a comment — those can only be baselined.
  for (const FileFacts& ff : facts) {
    markSuppressed(ff.path, ff.suppressions, findings);
    reportBadSuppressions(ff.path, ff.suppressions, findings);
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  return findings;
}

std::vector<Finding> lintFile(const std::string& path, const Options& options,
                              std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return {};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string src = buf.str();
  return lintSource(path, src, options);
}

}  // namespace pao::lint
