// pao_lint: project-invariant static analysis for the PAO tree.
//
//   pao_lint [options] <path>...      lint files, or recurse into directories
//
// Rules (see lint/rules.hpp and DESIGN.md "Static analysis & invariants"):
//   pointer-stability, unordered-iteration, executor-hygiene, obs-naming,
//   diag-hygiene
//
// Suppress a finding with a justified comment on, or directly above, the
// offending line:
//   // pao-lint: allow(executor-hygiene): benchmark needs its own pool
//
// Exit status: 0 when no unsuppressed findings, 1 otherwise, 2 on usage or
// I/O errors.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "lint/rules.hpp"

namespace fs = std::filesystem;
using pao::lint::Finding;
using pao::lint::Options;

namespace {

bool isSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h" || ext == ".hh" || ext == ".inl";
}

/// Directories never worth linting: build output, VCS metadata, and the
/// lint tool's own known-positive test fixtures.
bool isSkippedDir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == ".git" || name == "lint_fixtures" ||
         name.rfind("build", 0) == 0;
}

void collectFiles(const fs::path& root, std::vector<std::string>& out) {
  if (fs::is_regular_file(root)) {
    out.push_back(root.string());
    return;
  }
  if (!fs::is_directory(root)) return;
  for (auto it = fs::recursive_directory_iterator(root);
       it != fs::recursive_directory_iterator(); ++it) {
    if (it->is_directory() && isSkippedDir(it->path())) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && isSourceFile(it->path())) {
      out.push_back(it->path().string());
    }
  }
}

int usage() {
  std::fprintf(stderr,
               "usage: pao_lint [options] <file-or-dir>...\n"
               "  --annotate M=G   treat accessor M() as returning an\n"
               "                   unstable reference (invalidation group G)\n"
               "  --suppressed     also print suppressed findings\n"
               "  --list-rules     print the rule catalog and exit\n");
  return 2;
}

void printFinding(const Finding& f, bool markSuppressed) {
  std::printf("%s:%d: [%s]%s %s\n", f.file.c_str(), f.line, f.rule.c_str(),
              markSuppressed && f.suppressed ? " (suppressed)" : "",
              f.message.c_str());
  if (!f.hint.empty()) std::printf("    hint: %s\n", f.hint.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  std::vector<std::string> roots;
  bool showSuppressed = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--suppressed") {
      showSuppressed = true;
    } else if (arg == "--list-rules") {
      std::printf(
          "pointer-stability    reference from a reallocating container\n"
          "                     accessor used across a growth call\n"
          "unordered-iteration  unordered_map/set iteration writes output\n"
          "                     with no later canonical sort\n"
          "executor-hygiene     raw std::thread/std::async outside the\n"
          "                     executor; mutable lambda into parallelFor\n"
          "obs-naming           observability macro metric name literal\n"
          "                     not matching pao.<phase>.<metric>\n"
          "diag-hygiene         bare throw std::runtime_error in library\n"
          "                     code (use a located ParseError/util::Diag)\n");
      return 0;
    } else if (arg == "--annotate") {
      if (i + 1 >= argc) return usage();
      const std::string_view spec = argv[++i];
      const std::size_t eq = spec.find('=');
      if (eq == std::string_view::npos || eq == 0 ||
          eq + 1 == spec.size()) {
        return usage();
      }
      options.accessors.push_back({std::string(spec.substr(0, eq)),
                                   std::string(spec.substr(eq + 1))});
    } else if (!arg.empty() && arg.front() == '-') {
      return usage();
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty()) return usage();

  std::vector<std::string> files;
  for (const std::string& r : roots) {
    if (!fs::exists(r)) {
      std::fprintf(stderr, "pao_lint: no such path: %s\n", r.c_str());
      return 2;
    }
    collectFiles(r, files);
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  int unsuppressed = 0;
  int suppressed = 0;
  for (const std::string& f : files) {
    std::string error;
    const std::vector<Finding> findings = pao::lint::lintFile(f, options,
                                                              &error);
    if (!error.empty()) {
      std::fprintf(stderr, "pao_lint: %s\n", error.c_str());
      return 2;
    }
    for (const Finding& finding : findings) {
      if (finding.suppressed) {
        ++suppressed;
        if (showSuppressed) printFinding(finding, true);
      } else {
        ++unsuppressed;
        printFinding(finding, false);
      }
    }
  }
  std::printf(
      "pao_lint: %d finding(s), %d suppressed, %zu file(s) scanned\n",
      unsuppressed, suppressed, files.size());
  return unsuppressed == 0 ? 0 : 1;
}
