// pao_lint: project-invariant static analysis for the PAO tree.
//
//   pao_lint [options] <path>...      lint files, or recurse into directories
//
// Two passes over every file collected from the given roots: the per-file
// rules (pointer-stability, unordered-iteration, executor-hygiene,
// obs-naming, diag-hygiene) plus per-TU fact extraction, then the
// whole-program rule families over the aggregate (layering,
// lock-discipline, catalog-drift — the latter needs --design-doc). See
// lint/rules.hpp and DESIGN.md "Static analysis & invariants".
//
// Suppress a finding with a justified comment on, or directly above, the
// offending line:
//   // pao-lint: allow(executor-hygiene): benchmark needs its own pool
//
// Exit status: 0 when no unsuppressed, un-baselined findings; 1 otherwise;
// 2 on usage or I/O errors.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "lint/output.hpp"
#include "lint/rules.hpp"

namespace fs = std::filesystem;
using pao::lint::Baseline;
using pao::lint::FileInput;
using pao::lint::Finding;
using pao::lint::Format;
using pao::lint::Options;
using pao::lint::RuleInfo;

namespace {

bool isSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h" || ext == ".hh" || ext == ".inl";
}

/// Directories never worth linting: build output, VCS metadata, and the
/// lint tool's own known-positive test fixtures.
bool isSkippedDir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == ".git" || name == "lint_fixtures" ||
         name.rfind("build", 0) == 0;
}

void collectFiles(const fs::path& root, std::vector<std::string>& out) {
  if (fs::is_regular_file(root)) {
    out.push_back(root.string());
    return;
  }
  if (!fs::is_directory(root)) return;
  for (auto it = fs::recursive_directory_iterator(root);
       it != fs::recursive_directory_iterator(); ++it) {
    if (it->is_directory() && isSkippedDir(it->path())) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && isSourceFile(it->path())) {
      out.push_back(it->path().string());
    }
  }
}

bool readFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: pao_lint [options] <file-or-dir>...\n"
      "  --design-doc F     audit catalog-drift against design doc F\n"
      "  --format FMT       output format: text (default), json, sarif\n"
      "  --baseline F       known findings in F do not fail the run\n"
      "  --write-baseline F write current unsuppressed findings to F\n"
      "  --rule R           only report rule R (repeatable)\n"
      "  --annotate M=G     treat accessor M() as returning an\n"
      "                     unstable reference (invalidation group G)\n"
      "  --suppressed       also print suppressed findings (text format)\n"
      "  --list-rules       print the rule catalog and exit\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  std::vector<std::string> roots;
  std::vector<std::string> onlyRules;
  std::string baselinePath;
  std::string writeBaselinePath;
  Format format = Format::kText;
  bool showSuppressed = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--suppressed") {
      showSuppressed = true;
    } else if (arg == "--list-rules") {
      for (const RuleInfo& r : pao::lint::ruleCatalog()) {
        std::printf("%-20s %s\n", std::string(r.id).c_str(),
                    std::string(r.summary).c_str());
      }
      return 0;
    } else if (arg == "--format") {
      if (i + 1 >= argc || !pao::lint::parseFormat(argv[++i], &format)) {
        return usage();
      }
    } else if (arg == "--design-doc") {
      if (i + 1 >= argc) return usage();
      options.designDocPath = argv[++i];
      if (!readFile(options.designDocPath, &options.designDocText)) {
        std::fprintf(stderr, "pao_lint: cannot read design doc %s\n",
                     options.designDocPath.c_str());
        return 2;
      }
    } else if (arg == "--baseline") {
      if (i + 1 >= argc) return usage();
      baselinePath = argv[++i];
    } else if (arg == "--write-baseline") {
      if (i + 1 >= argc) return usage();
      writeBaselinePath = argv[++i];
    } else if (arg == "--rule") {
      if (i + 1 >= argc) return usage();
      const std::string rule = argv[++i];
      if (!pao::lint::isKnownRule(rule) &&
          rule != pao::lint::kRuleSuppression) {
        std::fprintf(stderr, "pao_lint: unknown rule '%s' (--list-rules)\n",
                     rule.c_str());
        return 2;
      }
      onlyRules.push_back(rule);
    } else if (arg == "--annotate") {
      if (i + 1 >= argc) return usage();
      const std::string_view spec = argv[++i];
      const std::size_t eq = spec.find('=');
      if (eq == std::string_view::npos || eq == 0 ||
          eq + 1 == spec.size()) {
        return usage();
      }
      options.accessors.push_back({std::string(spec.substr(0, eq)),
                                   std::string(spec.substr(eq + 1))});
    } else if (!arg.empty() && arg.front() == '-') {
      return usage();
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty()) return usage();

  Baseline baseline;
  if (!baselinePath.empty()) {
    std::string error;
    if (!pao::lint::loadBaseline(baselinePath, &baseline, &error)) {
      std::fprintf(stderr, "pao_lint: %s\n", error.c_str());
      return 2;
    }
  }

  std::vector<std::string> paths;
  for (const std::string& r : roots) {
    if (!fs::exists(r)) {
      std::fprintf(stderr, "pao_lint: no such path: %s\n", r.c_str());
      return 2;
    }
    collectFiles(r, paths);
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  std::vector<FileInput> files;
  files.reserve(paths.size());
  for (std::string& p : paths) {
    FileInput in;
    in.path = std::move(p);
    if (!readFile(in.path, &in.src)) {
      std::fprintf(stderr, "pao_lint: cannot open %s\n", in.path.c_str());
      return 2;
    }
    files.push_back(std::move(in));
  }

  std::vector<Finding> findings = pao::lint::lintTree(files, options);
  if (!onlyRules.empty()) {
    std::erase_if(findings, [&onlyRules](const Finding& f) {
      return std::find(onlyRules.begin(), onlyRules.end(), f.rule) ==
             onlyRules.end();
    });
  }
  for (Finding& f : findings) {
    if (!f.suppressed && baseline.contains(f)) f.baselined = true;
  }

  if (!writeBaselinePath.empty()) {
    std::ofstream out(writeBaselinePath, std::ios::binary);
    out << pao::lint::renderBaseline(findings);
    if (!out) {
      std::fprintf(stderr, "pao_lint: cannot write baseline %s\n",
                   writeBaselinePath.c_str());
      return 2;
    }
  }

  std::string rendered;
  switch (format) {
    case Format::kText:
      rendered = pao::lint::renderText(findings, files.size(), showSuppressed);
      break;
    case Format::kJson:
      rendered = pao::lint::renderJson(findings, files.size());
      break;
    case Format::kSarif:
      rendered = pao::lint::renderSarif(findings);
      break;
  }
  std::fputs(rendered.c_str(), stdout);

  const bool failed =
      std::any_of(findings.begin(), findings.end(), [](const Finding& f) {
        return !f.suppressed && !f.baselined;
      });
  return failed ? 1 : 0;
}
