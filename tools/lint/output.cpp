#include "lint/output.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace pao::lint {

namespace {

constexpr std::string_view kRepoComponents[] = {"src", "tools", "tests",
                                                "examples", "bench"};
constexpr std::string_view kRepoRootFiles[] = {"DESIGN.md", "README.md",
                                               "ROADMAP.md"};

void appendEscaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string jsonStr(std::string_view s) {
  std::string out = "\"";
  appendEscaped(out, s);
  out += '"';
  return out;
}

}  // namespace

bool parseFormat(std::string_view name, Format* out) {
  if (name == "text") {
    *out = Format::kText;
  } else if (name == "json") {
    *out = Format::kJson;
  } else if (name == "sarif") {
    *out = Format::kSarif;
  } else {
    return false;
  }
  return true;
}

const std::vector<RuleInfo>& ruleCatalog() {
  static const std::vector<RuleInfo> kCatalog = {
      {kRulePointerStability,
       "reference from a reallocating container accessor used across a "
       "growth call on the same container",
       true},
      {kRuleUnorderedIteration,
       "range-for over an unordered_map/unordered_set writes output with no "
       "later canonical sort",
       true},
      {kRuleExecutorHygiene,
       "raw std::thread/std::jthread/std::async outside the executor; "
       "mutable-capture lambda or blocking socket I/O inside parallelFor",
       true},
      {kRuleObsNaming,
       "observability macro name literal not matching pao.<phase>.<metric>",
       true},
      {kRuleDiagHygiene,
       "bare throw std::runtime_error in library code (use a located "
       "ParseError/util::Diag)",
       true},
      {kRuleLayering,
       "project include violating the module DAG util -> geom -> db -> "
       "lefdef -> {drc, benchgen} -> {pao, viz} -> router -> serve (obs "
       "includable anywhere)",
       true},
      {kRuleLockDiscipline,
       "blocking call or nested re-lock while a lock_guard/scoped_lock/"
       "unique_lock is live; mutex pairs acquired in both orders across the "
       "tree",
       true},
      {kRuleCatalogDrift,
       "stable identifiers (error codes, fault points, metric names) present "
       "in code but missing from the DESIGN.md catalogs, or documented but "
       "dead in code",
       true},
      {kRuleSuppression,
       "malformed pao-lint allow() marker: unknown rule id or missing "
       "justification (not itself suppressible)",
       false},
  };
  return kCatalog;
}

std::string relativizePath(std::string_view path) {
  while (path.substr(0, 2) == "./") path.remove_prefix(2);
  std::size_t best = std::string_view::npos;
  for (const std::string_view comp : kRepoComponents) {
    // Match `comp` as a whole path component followed by more path.
    std::size_t at = 0;
    while (true) {
      const std::size_t hit = path.find(comp, at);
      if (hit == std::string_view::npos) break;
      const bool startsComponent = hit == 0 || path[hit - 1] == '/';
      const std::size_t after = hit + comp.size();
      const bool endsComponent = after < path.size() && path[after] == '/';
      if (startsComponent && endsComponent &&
          (best == std::string_view::npos || hit > best)) {
        best = hit;
      }
      at = hit + 1;
    }
  }
  if (best != std::string_view::npos) return std::string(path.substr(best));
  const std::size_t slash = path.rfind('/');
  const std::string_view base =
      slash == std::string_view::npos ? path : path.substr(slash + 1);
  for (const std::string_view root : kRepoRootFiles) {
    if (base == root) return std::string(base);
  }
  return std::string(path);
}

std::string baselineKey(const Finding& f) {
  return f.rule + "|" + relativizePath(f.file) + "|" + f.message;
}

bool loadBaseline(const std::string& path, Baseline* out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open baseline " + path;
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty() || line.front() == '#') continue;
    out->keys.insert(line);
  }
  return true;
}

std::string renderBaseline(const std::vector<Finding>& findings) {
  std::set<std::string> keys;
  for (const Finding& f : findings) {
    if (!f.suppressed) keys.insert(baselineKey(f));
  }
  std::string out =
      "# pao_lint baseline: one rule|file|message key per line. Findings\n"
      "# listed here are reported but do not fail the run; the ratchet only\n"
      "# tightens — regenerate with --write-baseline after burning one down.\n";
  for (const std::string& k : keys) {
    out += k;
    out += '\n';
  }
  return out;
}

std::string renderText(const std::vector<Finding>& findings,
                       std::size_t filesScanned, bool showSuppressed) {
  std::ostringstream out;
  std::size_t unsuppressed = 0;
  std::size_t suppressed = 0;
  std::size_t baselined = 0;
  for (const Finding& f : findings) {
    if (f.suppressed) {
      ++suppressed;
      if (!showSuppressed) continue;
    } else if (f.baselined) {
      ++baselined;
    } else {
      ++unsuppressed;
    }
    out << f.file << ':' << f.line << ": [" << f.rule << ']'
        << (f.suppressed ? " (suppressed)" : f.baselined ? " (baselined)" : "")
        << ' ' << f.message << '\n';
    if (!f.hint.empty()) out << "    hint: " << f.hint << '\n';
  }
  out << "pao_lint: " << unsuppressed << " finding(s), " << baselined
      << " baselined, " << suppressed << " suppressed, " << filesScanned
      << " file(s) scanned\n";
  return out.str();
}

std::string renderJson(const std::vector<Finding>& findings,
                       std::size_t filesScanned) {
  std::string out = "{\"tool\":\"pao_lint\",\"findings\":[";
  bool first = true;
  std::size_t unsuppressed = 0;
  std::size_t suppressed = 0;
  std::size_t baselined = 0;
  for (const Finding& f : findings) {
    if (f.suppressed) {
      ++suppressed;
    } else if (f.baselined) {
      ++baselined;
    } else {
      ++unsuppressed;
    }
    if (!first) out += ',';
    first = false;
    out += "{\"file\":" + jsonStr(f.file) +
           ",\"line\":" + std::to_string(f.line) +
           ",\"rule\":" + jsonStr(f.rule) +
           ",\"message\":" + jsonStr(f.message) +
           ",\"hint\":" + jsonStr(f.hint) +
           ",\"suppressed\":" + (f.suppressed ? "true" : "false") +
           ",\"baselined\":" + (f.baselined ? "true" : "false") + "}";
  }
  out += "],\"summary\":{\"findings\":" + std::to_string(unsuppressed) +
         ",\"baselined\":" + std::to_string(baselined) +
         ",\"suppressed\":" + std::to_string(suppressed) +
         ",\"files_scanned\":" + std::to_string(filesScanned) + "}}\n";
  return out;
}

std::string renderSarif(const std::vector<Finding>& findings) {
  std::string out =
      "{\"$schema\":"
      "\"https://json.schemastore.org/sarif-2.1.0.json\","
      "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
      "\"name\":\"pao_lint\",\"informationUri\":"
      "\"DESIGN.md#static-analysis--invariants\",\"rules\":[";
  const std::vector<RuleInfo>& catalog = ruleCatalog();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (i != 0) out += ',';
    out += "{\"id\":" + jsonStr(catalog[i].id) +
           ",\"shortDescription\":{\"text\":" + jsonStr(catalog[i].summary) +
           "}}";
  }
  out += "]}},\"results\":[";
  bool first = true;
  for (const Finding& f : findings) {
    if (!first) out += ',';
    first = false;
    std::size_t ruleIndex = 0;
    for (std::size_t i = 0; i < catalog.size(); ++i) {
      if (catalog[i].id == f.rule) ruleIndex = i;
    }
    std::string text = f.message;
    if (!f.hint.empty()) {
      text += " (hint: ";
      text += f.hint;
      text += ')';
    }
    out += "{\"ruleId\":" + jsonStr(f.rule) +
           ",\"ruleIndex\":" + std::to_string(ruleIndex) + ",\"level\":" +
           (f.suppressed || f.baselined ? jsonStr("note") : jsonStr("error")) +
           ",\"message\":{\"text\":" + jsonStr(text) +
           "},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{"
           "\"uri\":" +
           jsonStr(relativizePath(f.file)) +
           "},\"region\":{\"startLine\":" + std::to_string(std::max(f.line, 1)) +
           "}}}]";
    if (f.suppressed) {
      out += ",\"suppressions\":[{\"kind\":\"inSource\"}]";
    }
    out += ",\"baselineState\":";
    out += f.baselined ? jsonStr("unchanged") : jsonStr("new");
    out += '}';
  }
  out += "]}]}\n";
  return out;
}

}  // namespace pao::lint
