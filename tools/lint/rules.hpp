// pao_lint rule engine: project-invariant checks over the token stream
// produced by lint/lexer.hpp. Four rules, each named and suppressible with
// `// pao-lint: allow(<rule>): <justification>` on the offending line or the
// line above it:
//
//   pointer-stability   A reference/pointer obtained from a reallocating
//                       container accessor (a `std::vector` growth call such
//                       as `v.emplace_back()`, or an annotated project
//                       accessor) is used after a later call that may
//                       reallocate the same container. This is the bug class
//                       PR 1's TSan leg caught at runtime in tech_gen.cpp
//                       and test_util.hpp.
//   unordered-iteration A range-for over a `std::unordered_map`/`_set`
//                       whose body writes output (stream insertion,
//                       push_back/emplace_back) with no subsequent canonical
//                       sort in the enclosing block — hash iteration order
//                       is not deterministic, which breaks the executor's
//                       determinism contract (cf. DrcEngine::checkAll's
//                       violationLess sort).
//   executor-hygiene    Raw `std::thread`/`std::jthread`/`std::async` use
//                       outside src/util/executor.*, or a mutable-capture
//                       lambda passed to `parallelFor` (slot-writes, not
//                       captured mutation, keep parallel results
//                       deterministic). In service code (Options::
//                       socketIoBanSubstrings, default src/serve/) it also
//                       flags blocking socket I/O calls inside a
//                       `parallelFor` argument list: the epoll event loop
//                       owns every socket, and a worker blocking on
//                       read/send would stall the whole dispatch batch.
//   obs-naming          A string literal passed as the registry name to one
//                       of the observability macros (PAO_COUNTER_ADD,
//                       PAO_COUNTER_INC, PAO_GAUGE_SET,
//                       PAO_HISTOGRAM_OBSERVE) that does not follow the
//                       `pao.<phase>.<metric>` convention: dotted lowercase
//                       [a-z0-9_] with at least three segments, first
//                       segment `pao` (see DESIGN.md "Observability").
//   diag-hygiene        A bare `throw std::runtime_error(...)` in library
//                       code (anything outside Options::
//                       diagHygieneExemptSubstrings — by default src/util/,
//                       tools/ and tests/). Library errors must carry a
//                       source location and stable code: throw
//                       lefdef::ParseError with a util::Diag, or a domain
//                       exception type (see DESIGN.md "Robustness & failure
//                       semantics").
//
// Three further rule families are *whole-program*: they only run through
// lintTree(), which aggregates per-TU facts (lint/facts.hpp) across every
// file handed to the driver:
//
//   layering            The module DAG `util -> geom -> db -> lefdef ->
//                       {drc, benchgen} -> {pao, viz} -> router -> serve`
//                       (with `obs` includable from anywhere) enforced on
//                       project-relative quoted includes. An include of a
//                       higher-ranked or same-rank sibling module is a
//                       finding.
//   lock-discipline     Blocking calls (file/socket I/O, parallelFor,
//                       .join(), sleep_for) while a lock_guard/scoped_lock/
//                       unique_lock is live in the enclosing scope;
//                       double-lock of one mutex; and cross-file
//                       inconsistent acquisition order between mutex pairs.
//   catalog-drift       Stable identifiers (SRVnnn/DEFnnn/LEXnnn/GENnnn
//                       error codes, PAO_FAULTS point names, pao.* metric
//                       names) emitted by code but absent from the DESIGN.md
//                       catalogs, and catalog entries no longer present in
//                       code — both directions, making DESIGN.md a checked
//                       artifact. Needs Options::designDocText.
//
// A further internal rule id, `suppression`, reports malformed suppressions
// (missing justification, unknown rule id); it cannot itself be suppressed.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pao::lint {

inline constexpr std::string_view kRulePointerStability = "pointer-stability";
inline constexpr std::string_view kRuleUnorderedIteration =
    "unordered-iteration";
inline constexpr std::string_view kRuleExecutorHygiene = "executor-hygiene";
inline constexpr std::string_view kRuleObsNaming = "obs-naming";
inline constexpr std::string_view kRuleDiagHygiene = "diag-hygiene";
inline constexpr std::string_view kRuleLayering = "layering";
inline constexpr std::string_view kRuleLockDiscipline = "lock-discipline";
inline constexpr std::string_view kRuleCatalogDrift = "catalog-drift";
inline constexpr std::string_view kRuleSuppression = "suppression";

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  std::string hint;
  bool suppressed = false;  ///< a justified allow() covers this finding
  bool baselined = false;   ///< present in the --baseline ratchet file
};

/// A project accessor known to return a reference into reallocating vector
/// storage. Accessors sharing a `group` (called on the same receiver)
/// invalidate each other's returned references — e.g. an insertLayer would
/// share a group with addLayer.
struct AccessorAnnotation {
  std::string method;
  std::string group;
};

struct Options {
  /// Annotated unstable accessors, seeded from defaultAccessors(). The
  /// generic `std::vector` growth-call detection is always on regardless.
  std::vector<AccessorAnnotation> accessors;
  /// Path suffixes exempt from the raw-thread half of executor-hygiene
  /// (the executor and job-graph implementations themselves must use
  /// std::thread to build the worker pool).
  std::vector<std::string> rawThreadExemptSuffixes = {
      "src/util/executor.cpp", "src/util/executor.hpp",
      "src/util/jobs.cpp", "src/util/jobs.hpp"};
  /// Path substrings exempt from diag-hygiene: the generic error machinery
  /// itself (src/util/), the CLI front ends (tools/, whose main() catches
  /// and maps exceptions to exit codes) and the tests.
  std::vector<std::string> diagHygieneExemptSubstrings = {"src/util/",
                                                          "tools/", "tests/"};
  /// Path substrings where executor-hygiene additionally forbids blocking
  /// socket I/O from parallelFor worker context. Only the single-threaded
  /// event loop in src/serve/server.cpp may touch sockets; dispatch workers
  /// compute responses and hand strings back.
  std::vector<std::string> socketIoBanSubstrings = {"src/serve/"};
  /// Path substrings whose *emission sites* are exempt from the
  /// undocumented-in-code half of catalog-drift: tests register scratch
  /// metrics and synthetic fault points on purpose. Their identifier uses
  /// still count as "alive in code" for the dead-in-docs direction.
  std::vector<std::string> catalogExemptSubstrings = {"tests/"};
  /// The design document the catalog-drift rule audits against (normally
  /// DESIGN.md, loaded by the driver's --design-doc flag). When the text is
  /// empty the rule is skipped entirely.
  std::string designDocPath;
  std::string designDocText;

  Options();
};

/// One in-memory translation unit handed to lintTree().
struct FileInput {
  std::string path;
  std::string src;
};

/// The built-in annotation list. Currently util::StringInterner's viewOf /
/// intern (group "interner"): viewOf returns a reference into a vector that
/// intern can grow. (Tech::addLayer / Tech::addViaDef were the original
/// offenders and were moved to stable deque-backed storage.) Add entries
/// here when introducing a new accessor that hands out references into a
/// std::vector.
std::vector<AccessorAnnotation> defaultAccessors();

/// True when `rule` is a rule id findings can carry (and allow() can name).
bool isKnownRule(std::string_view rule);

/// Lints one in-memory translation unit with the *per-file* rules only
/// (pointer-stability, unordered-iteration, executor-hygiene, obs-naming,
/// diag-hygiene). `path` is used for reporting and for the executor-hygiene
/// path exemptions. Suppressed findings are returned with
/// `suppressed == true` so callers can count or hide them.
std::vector<Finding> lintSource(std::string_view path, std::string_view src,
                                const Options& options);

/// Reads and lints `path` (per-file rules only). On I/O failure returns
/// empty and sets *error.
std::vector<Finding> lintFile(const std::string& path, const Options& options,
                              std::string* error);

/// The whole-program entry point: runs the per-file rules on every input,
/// extracts per-TU facts, then runs the cross-TU rule families (layering,
/// lock-discipline, catalog-drift) over the aggregate. Suppressions apply
/// to every finding anchored in a scanned file; findings anchored in the
/// design document (dead-in-docs catalog drift) can only be baselined.
/// Results are sorted by (file, line, rule).
std::vector<Finding> lintTree(const std::vector<FileInput>& files,
                              const Options& options);

}  // namespace pao::lint
