// Small token-stream matching helpers shared by the per-file rule passes
// (lint/rules.cpp) and the whole-program fact extractor (lint/facts.cpp).
// Everything operates on the flat token vector produced by lint/lexer.hpp;
// nothing here allocates beyond the returned values.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "lint/lexer.hpp"

namespace pao::lint {

inline bool isIdent(const Token& t, std::string_view s) {
  return t.kind == TokKind::kIdent && t.text == s;
}
inline bool isPunct(const Token& t, std::string_view s) {
  return t.kind == TokKind::kPunct && t.text == s;
}

/// Index of the punctuator matching tokens[open] (an `open` punct), or
/// tokens.size() when unbalanced.
inline std::size_t matchForward(const std::vector<Token>& toks,
                                std::size_t open, std::string_view openTxt,
                                std::string_view closeTxt) {
  int depth = 0;
  for (std::size_t k = open; k < toks.size(); ++k) {
    if (isPunct(toks[k], openTxt)) ++depth;
    if (isPunct(toks[k], closeTxt) && --depth == 0) return k;
  }
  return toks.size();
}

/// Brace depth each token lives at: an opening `{` lives at the outer depth,
/// its contents at depth+1.
inline std::vector<int> braceDepths(const std::vector<Token>& toks) {
  std::vector<int> d(toks.size(), 0);
  int depth = 0;
  for (std::size_t k = 0; k < toks.size(); ++k) {
    if (isPunct(toks[k], "}") && depth > 0) --depth;
    d[k] = depth;
    if (isPunct(toks[k], "{")) ++depth;
  }
  return d;
}

/// Walks back from `last` (inclusive) over an `a.b->c` chain and returns the
/// normalized receiver string ("a.b.c") plus the index of its first token.
/// `last` must be an identifier.
struct Receiver {
  std::string chain;
  std::size_t begin = 0;
};
inline Receiver receiverChain(const std::vector<Token>& toks,
                              std::size_t last) {
  std::vector<std::string_view> parts{toks[last].text};
  std::size_t k = last;
  while (k >= 2 &&
         (isPunct(toks[k - 1], ".") || isPunct(toks[k - 1], "->") ||
          isPunct(toks[k - 1], "::")) &&
         toks[k - 2].kind == TokKind::kIdent) {
    parts.push_back(toks[k - 2].text);
    k -= 2;
  }
  std::string chain;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    if (!chain.empty()) chain.push_back('.');
    chain.append(*it);
  }
  return {std::move(chain), k};
}

/// The contents of a string-literal token with the surrounding quotes (and
/// any encoding/raw prefix) removed. Raw string delimiters are stripped too.
inline std::string_view literalBody(std::string_view text) {
  const std::size_t open = text.find('"');
  if (open == std::string_view::npos) return text;
  // R"delim( ... )delim"
  if (open > 0 && text[open - 1] == 'R') {
    const std::size_t lp = text.find('(', open);
    const std::size_t rp = text.rfind(')');
    if (lp != std::string_view::npos && rp != std::string_view::npos &&
        rp > lp) {
      return text.substr(lp + 1, rp - lp - 1);
    }
  }
  std::string_view body = text.substr(open + 1);
  if (!body.empty() && body.back() == '"') body.remove_suffix(1);
  return body;
}

}  // namespace pao::lint
