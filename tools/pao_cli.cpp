// pao_cli — command-line front end for the library.
//
//   pao_cli gen <preset> <scale> <out-prefix>      synthesize a testcase to
//                                                  <out-prefix>.lef/.def
//   pao_cli analyze <lef> <def> [options]          run pin access analysis
//   pao_cli route <lef> <def> [options]            PAAF + detailed routing
//   pao_cli bench-incremental <lef> <def> [opts]   incremental-session bench
//   pao_cli list                                   list testcase presets
//
// Stream contract: every human-readable status line goes to stderr; stdout
// is reserved for `--report-json -` so scripts can pipe the report without
// scraping.
//
// analyze options:
//   --mode bca|nobca|legacy    flow preset (default bca)
//   --threads N                Steps 1-2 worker threads (default 1, 0=auto)
//   --report-failed N          print up to N failed-pin diagnostics
//   --cache-in <file>          preload the access cache (exit 1 on a
//                              fingerprint mismatch)
//   --cache-out <file>         save the access cache after the run
//   --report-json <file|->     write a pao-report/1 JSON document
//   --trace-out <file>         write a Chrome/Perfetto trace of the run
//   --profile-out <file|->     write a pao-report/2 document whose
//                              "profile" section is the oracle pipeline's
//                              job-graph profile (critical path, headroom,
//                              per-worker utilization); with --trace-out
//                              the trace additionally gains per-worker job
//                              tracks with dependency flow arrows
//                              (PAO_OBS=ON builds only)
// route options:
//   --out <file.def>           write the routed design as DEF
//   --threads N                worker threads for oracle, access planning
//                              and batch DRC (default 1, 0=auto); routed
//                              output is identical for any value
//   --cache-in / --cache-out   as for analyze
//   --report-json / --trace-out  as for analyze
// bench-incremental options:
//   --moves K                  number of random instance moves (default 8)
//   --threads N                worker threads (default 1, 0=auto)
//   --seed S                   RNG seed (default 1)
//   --report-json / --trace-out  as for analyze
//
// robustness options (analyze and route):
//   --strict                   abort on the first input error (default)
//   --keep-going               recover from LEF/DEF parse errors, fall back
//                              per unique class when Steps 1-2 fail, and
//                              treat an unusable --cache-in as a warning;
//                              everything recovered from is recorded in the
//                              report's "degraded" section
//   --step3-budget S           wall-clock budget (seconds) for the Step-3
//                              cluster DP; on expiry remaining clusters
//                              commit best-so-far patterns (degraded event)
//   --faults SPEC              arm deterministic fault injection (see
//                              src/util/fault.hpp for the spec grammar);
//                              also read from the PAO_FAULTS env variable
//
// exit codes:
//   0  success
//   1  quality failure (failed pins, report/trace write error, rejected
//      cache in strict mode)
//   2  usage error or malformed --faults/PAO_FAULTS spec
//   3  invalid input / fatal error (parse error in strict mode, unreadable
//      file, injected fault escaping in strict mode) — never an abort
//   4  run completed but degraded (nonempty "degraded" section; takes
//      precedence over 1)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "benchgen/huge.hpp"
#include "benchgen/testcase.hpp"
#include "db/legality.hpp"
#include "lefdef/def_parser.hpp"
#include "lefdef/def_route_writer.hpp"
#include "lefdef/def_writer.hpp"
#include "lefdef/lef_parser.hpp"
#include "lefdef/lef_writer.hpp"
#include "lefdef/stream.hpp"
#include "obs/enabled.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#if PAO_OBS_ENABLED
#include "obs/profile.hpp"
#endif
#include "pao/evaluate.hpp"
#include "pao/report_json.hpp"
#include "pao/session.hpp"
#include "router/router.hpp"
#include "util/cpu_time.hpp"
#include "util/fault.hpp"

namespace {

using namespace pao;

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  pao_cli gen <preset> <scale> <out-prefix>   (preset 0-9, a, m, h)\n"
      "  pao_cli analyze <lef> <def> [--mode bca|nobca|legacy] [--threads N]"
      " [--stream] [--report-failed N] [--cache-in f] [--cache-out f]"
      " [--report-json f|-] [--trace-out f] [--profile-out f|-]"
      " [--strict|--keep-going] [--step3-budget S] [--faults SPEC]\n"
      "  pao_cli route <lef> <def> [--out routed.def] [--threads N]"
      " [--cache-in f] [--cache-out f] [--report-json f|-] [--trace-out f]"
      " [--strict|--keep-going] [--step3-budget S] [--faults SPEC]\n"
      "  pao_cli bench-incremental <lef> <def> [--moves K] [--threads N]"
      " [--seed S] [--report-json f|-] [--trace-out f]\n"
      "  pao_cli list\n");
  return 2;
}

/// Reads `path`, or throws (caught in main → exit 3). `faultPoint` names the
/// injection point guarding this read: "lef.io", "def.io" or "cache.io".
std::string slurp(const char* path, const char* faultPoint) {
  PAO_FAULT_INJECT(faultPoint);
  std::ifstream f(path);
  if (!f) {
    throw std::runtime_error(std::string("cannot open ") + path);
  }
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

/// Shared --strict/--keep-going/--step3-budget/--faults handling plus the
/// degradation events collected before the oracle runs (parse recoveries).
struct RobustOpts {
  bool keepGoing = false;
  double step3Budget = 0;
  std::vector<core::DegradedEvent> preOracle;

  /// Returns true when argv[i] was one of ours; sets `bad` (exit 2) on a
  /// malformed --faults spec.
  bool parseFlag(int argc, char** argv, int& i, bool& bad) {
    if (std::strcmp(argv[i], "--strict") == 0) {
      keepGoing = false;
      return true;
    }
    if (std::strcmp(argv[i], "--keep-going") == 0) {
      keepGoing = true;
      return true;
    }
    if (std::strcmp(argv[i], "--step3-budget") == 0 && i + 1 < argc) {
      step3Budget = std::atof(argv[++i]);
      return true;
    }
    if (std::strcmp(argv[i], "--faults") == 0 && i + 1 < argc) {
      std::string error;
      if (!util::FaultRegistry::instance().configure(argv[++i], &error)) {
        std::fprintf(stderr, "--faults: %s\n", error.c_str());
        bad = true;
      }
      return true;
    }
    return false;
  }

  void apply(core::OracleConfig& cfg) const {
    cfg.keepGoing = keepGoing;
    cfg.step3BudgetSeconds = step3Budget;
  }
};

/// Prints recovery-mode diagnostics and records the errors as "parse_error"
/// degradation events.
void reportDiags(const lefdef::ParseResult& pr, RobustOpts& rob) {
  for (const util::Diag& d : pr.diags) {
    std::fprintf(stderr, "%s\n", d.format().c_str());
    if (d.severity == util::Severity::kError) {
      rob.preOracle.push_back({"parse_error", d.header(), -1});
    }
  }
}

/// Merges parse-time and oracle degradation events into canonical order,
/// prints them, stores them in the report, and maps them to the exit code:
/// 4 when any event occurred (wins over `qualityExit`), else `qualityExit`.
int finishDegraded(const RobustOpts& rob,
                   const std::vector<core::DegradedEvent>& fromOracle,
                   obs::RunReport& report, int qualityExit) {
  std::vector<core::DegradedEvent> all = rob.preOracle;
  all.insert(all.end(), fromOracle.begin(), fromOracle.end());
  std::sort(all.begin(), all.end(),
            [](const core::DegradedEvent& a, const core::DegradedEvent& b) {
              return std::tie(a.cls, a.kind, a.detail) <
                     std::tie(b.cls, b.kind, b.detail);
            });
  if (!all.empty() || rob.keepGoing) {
    report.section("degraded") = core::degradedSectionJson(all);
  }
  if (all.empty()) return qualityExit;
  std::fprintf(stderr, "  degraded         : %zu event(s)\n", all.size());
  for (const core::DegradedEvent& e : all) {
    std::fprintf(stderr, "    [%s] %s\n", e.kind.c_str(), e.detail.c_str());
  }
  return 4;
}

struct LoadedDesign {
  db::Tech tech;
  db::Library lib;
  db::Design design;
};

/// Shared --report-json/--trace-out/--profile-out handling: the tracer is
/// enabled before the workload runs and all artifacts are written at scope
/// exit. The profile goes to its own file (schema pao-report/2) so the
/// plain --report-json document stays v1 and byte-comparable across thread
/// counts after normalizeForCompare.
struct ObsOutputs {
  const char* reportPath = nullptr;
  const char* tracePath = nullptr;
  const char* profilePath = nullptr;

  bool parseFlag(int argc, char** argv, int& i) {
    if (std::strcmp(argv[i], "--report-json") == 0 && i + 1 < argc) {
      reportPath = argv[++i];
      return true;
    }
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      tracePath = argv[++i];
      return true;
    }
    if (std::strcmp(argv[i], "--profile-out") == 0 && i + 1 < argc) {
      profilePath = argv[++i];
      return true;
    }
    return false;
  }

  void startTracing() const {
    if (tracePath != nullptr) obs::Tracer::instance().enable();
  }

  /// Finishes the run: captures metrics into the report and writes both
  /// files. Returns false (after printing to stderr) on any I/O failure.
  bool finish(obs::RunReport& report) const {
    bool ok = true;
    if (tracePath != nullptr) {
      obs::Tracer& tracer = obs::Tracer::instance();
      tracer.disable();
      std::ofstream out(tracePath);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", tracePath);
        ok = false;
      } else {
        out << tracer.exportChromeTrace() << "\n";
        std::fprintf(stderr, "trace: wrote %llu events to %s\n",
                     static_cast<unsigned long long>(tracer.eventCount()),
                     tracePath);
      }
    }
    if (reportPath != nullptr) {
      report.captureMetrics();
      std::string error;
      if (!obs::validateReport(report.doc(), &error)) {
        std::fprintf(stderr, "internal error: report fails validation: %s\n",
                     error.c_str());
        ok = false;
      }
      if (!report.writeFile(reportPath, &error)) {
        std::fprintf(stderr, "report: %s\n", error.c_str());
        ok = false;
      } else if (std::strcmp(reportPath, "-") != 0) {
        std::fprintf(stderr, "report: wrote %s\n", reportPath);
      }
    }
    return ok;
  }
};

#if PAO_OBS_ENABLED
/// Writes a pao-report/2 document whose "profile" section is the job-graph
/// profile of the oracle pipeline (--profile-out). A separate file from
/// --report-json so that document stays schema v1 and byte-comparable
/// across thread counts. Returns false (after printing to stderr) when the
/// pipeline graph never ran or on validation/I/O failure.
bool writeProfileReport(const char* path, const obs::GraphProfile& gp,
                        obs::Json config) {
  if (gp.empty()) {
    std::fprintf(stderr,
                 "profile: no pipeline job graph ran (legacy mode or empty "
                 "design); nothing to write\n");
    return false;
  }
  obs::RunReport report("pao_cli analyze");
  report.doc().set("schema", obs::Json(obs::kReportSchemaV2));
  report.section("config") = std::move(config);
  report.section("profile") = obs::profileSectionJson(gp);
  std::string error;
  if (!obs::validateReport(report.doc(), &error)) {
    std::fprintf(stderr,
                 "internal error: profile report fails validation: %s\n",
                 error.c_str());
    return false;
  }
  if (!report.writeFile(path, &error)) {
    std::fprintf(stderr, "profile: %s\n", error.c_str());
    return false;
  }
  if (std::strcmp(path, "-") != 0) {
    std::fprintf(stderr, "profile: wrote %s\n", path);
  }
  return true;
}
#endif

/// Preloads `cache` from `path`. Strict mode exits 1 on any rejection
/// (wrong fingerprint, corruption, unreadable file) so a stale cache never
/// goes unnoticed; keep-going warns and runs without the preload — the
/// cache is a pure accelerator, so the result is unaffected.
void loadCacheFile(core::AccessCache& cache, const char* path,
                   const LoadedDesign& ld, bool keepGoing) {
  std::string error;
  try {
    const std::size_t n =
        cache.load(slurp(path, "cache.io"), ld.tech, ld.lib, &error);
    if (error.empty()) {
      std::fprintf(stderr, "cache: loaded %zu entries from %s\n", n, path);
      return;
    }
  } catch (const std::exception& e) {
    error = e.what();
  }
  if (!keepGoing) {
    std::fprintf(stderr, "cache '%s' rejected: %s\n", path, error.c_str());
    std::exit(1);
  }
  std::fprintf(stderr,
               "warning: cache '%s' unusable (%s); continuing without it\n",
               path, error.c_str());
}

void saveCacheFile(const core::AccessCache& cache, const char* path,
                   const LoadedDesign& ld) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path);
    std::exit(1);
  }
  out << cache.save(ld.tech, ld.lib);
  std::fprintf(stderr, "cache: saved %zu entries to %s\n", cache.size(),
               path);
}

void reportCache(const core::AccessCache& cache) {
  std::fprintf(stderr,
               "  access cache     : %zu entries, %zu hits, %zu misses\n",
               cache.size(), cache.hits(), cache.misses());
}

/// Parses the LEF/DEF pair. Diagnostics carry the real file names; in
/// keep-going mode parse errors are printed, recorded as "parse_error"
/// degradation events, and the parsers resync and continue — in strict mode
/// the first error throws ParseError (caught in main → exit 3).
void load(LoadedDesign& ld, const char* lefPath, const char* defPath,
          RobustOpts& rob) {
  lefdef::ParseOptions lefOpts;
  lefOpts.file = lefPath;
  lefOpts.recover = rob.keepGoing;
  reportDiags(
      lefdef::parseLef(slurp(lefPath, "lef.io"), ld.tech, ld.lib, lefOpts),
      rob);
  ld.design.tech = &ld.tech;
  ld.design.lib = &ld.lib;
  lefdef::ParseOptions defOpts;
  defOpts.file = defPath;
  defOpts.recover = rob.keepGoing;
  reportDiags(lefdef::parseDef(slurp(defPath, "def.io"), ld.design, defOpts),
              rob);
  std::fprintf(stderr,
               "loaded '%s': %zu layers, %zu masters, %zu instances, %zu "
               "nets\n",
               ld.design.name.c_str(), ld.tech.layers().size(),
               ld.lib.masters().size(), ld.design.instances.size(),
               ld.design.nets.size());
}

/// Streamed variant of load(): mmap-backed single-pass ingest via
/// lefdef::parseLefFile/parseDefFile (chunked parallel DEF sections). Same
/// diagnostics/recovery contract and the same "lef.io"/"def.io" fault
/// points (injected inside the *File forms before the file is opened).
/// Fills `ir` for the report's "ingest" section.
void loadStreamed(LoadedDesign& ld, const char* lefPath, const char* defPath,
                  RobustOpts& rob, int numThreads, core::IngestReport& ir) {
  lefdef::ParseOptions lefOpts;
  lefOpts.file = lefPath;
  lefOpts.recover = rob.keepGoing;
  lefdef::IngestStats lefStats;
  reportDiags(lefdef::parseLefFile(lefPath, ld.tech, ld.lib, lefOpts,
                                   &lefStats),
              rob);
  ld.design.tech = &ld.tech;
  ld.design.lib = &ld.lib;
  lefdef::StreamOptions defOpts;
  defOpts.parse.file = defPath;
  defOpts.parse.recover = rob.keepGoing;
  defOpts.numThreads = numThreads;
  lefdef::IngestStats defStats;
  reportDiags(lefdef::parseDefFile(defPath, ld.design, defOpts, &defStats),
              rob);
  ir.lefBytes = lefStats.bytes;
  ir.defBytes = defStats.bytes;
  ir.chunks = defStats.chunks;
  ir.components = defStats.components;
  ir.nets = defStats.nets;
  ir.mapped = defStats.mapped;
  ir.legacyFallback = defStats.legacyFallback;
  ir.parseSeconds = defStats.parseSeconds;
  ir.peakRssBytes = util::peakRssBytes();
  const double secs = ir.parseSeconds > 0 ? ir.parseSeconds : 1e-9;
  std::fprintf(stderr,
               "loaded '%s': %zu layers, %zu masters, %zu instances, %zu "
               "nets\n",
               ld.design.name.c_str(), ld.tech.layers().size(),
               ld.lib.masters().size(), ld.design.instances.size(),
               ld.design.nets.size());
  std::fprintf(stderr,
               "  streamed ingest  : %.1f MB in %zu chunks, %.1f MB/s, "
               "%.0f insts/s, peak RSS %.1f MB%s%s\n",
               static_cast<double>(ir.defBytes) / (1024.0 * 1024.0),
               ir.chunks,
               static_cast<double>(ir.defBytes) / (1024.0 * 1024.0) / secs,
               static_cast<double>(ir.components) / secs,
               static_cast<double>(ir.peakRssBytes) / (1024.0 * 1024.0),
               ir.mapped ? "" : " (read fallback)",
               ir.legacyFallback ? " (legacy fallback)" : "");
}

int cmdList() {
  std::fprintf(stderr, "%-16s %10s %8s %10s %6s\n", "preset", "#cells",
               "#macros", "#nets", "node");
  int idx = 0;
  for (const benchgen::TestcaseSpec& s : benchgen::ispd18Suite()) {
    std::fprintf(stderr, "%-2d %-13s %10zu %8d %10zu %6s\n", idx++,
                 s.name.c_str(), s.numCells, s.numMacros, s.numNets,
                 s.node == benchgen::Node::k45 ? "45nm" : "32nm");
  }
  const benchgen::TestcaseSpec aes = benchgen::aes14Spec();
  std::fprintf(stderr, "%-2s %-13s %10zu %8d %10zu %6s\n", "a",
               aes.name.c_str(), aes.numCells, aes.numMacros, aes.numNets,
               "14nm");
  const benchgen::TestcaseSpec mixed = benchgen::mixedSpec();
  std::fprintf(stderr, "%-2s %-13s %10zu %8d %10zu %6s\n", "m",
               mixed.name.c_str(), mixed.numCells, mixed.numMacros,
               mixed.numNets,
               mixed.node == benchgen::Node::k45 ? "45nm" : "32nm");
  const benchgen::HugeSpec huge = benchgen::hugeSpec();
  std::fprintf(stderr, "%-2s %-13s %10zu %8d %10zu %6s\n", "h",
               huge.name.c_str(), huge.numCells, 0, huge.numNets,
               huge.node == benchgen::Node::k45 ? "45nm" : "32nm");
  return 0;
}

int cmdGen(int argc, char** argv) {
  if (argc < 5) return usage();
  const std::string which = argv[2];
  const double scale = std::atof(argv[3]);
  const std::string prefix = argv[4];

  if (which == "h" || which == "huge") {
    // The huge preset streams the DEF straight to disk — the design is
    // never materialized, so scale 6+ (10M instances) fits in memory.
    const benchgen::HugeSpec hs = benchgen::hugeSpec();
    const benchgen::HugeTechLib tl = benchgen::makeHugeTechLib(hs);
    std::ofstream lef(prefix + ".lef");
    lef << lefdef::writeLef(*tl.tech, *tl.lib);
    std::ofstream def(prefix + ".def");
    const benchgen::HugeCounts counts = benchgen::writeHugeDef(
        hs, scale > 0 ? scale : 1.0, *tl.tech, *tl.lib, def);
    if (!lef || !def) {
      std::fprintf(stderr, "cannot write %s.lef / %s.def\n", prefix.c_str(),
                   prefix.c_str());
      return 3;
    }
    std::fprintf(stderr,
                 "wrote %s.lef / %s.def (%zu instances, %zu nets, %d rows, "
                 "streamed)\n",
                 prefix.c_str(), prefix.c_str(), counts.cells, counts.nets,
                 counts.rows);
    return 0;
  }

  benchgen::TestcaseSpec spec;
  if (which == "a" || which == "aes14") {
    spec = benchgen::aes14Spec();
  } else if (which == "m" || which == "mixed") {
    spec = benchgen::mixedSpec();
  } else {
    const int idx = std::atoi(which.c_str());
    const auto suite = benchgen::ispd18Suite();
    if (idx < 0 || idx >= static_cast<int>(suite.size())) return usage();
    spec = suite[idx];
  }
  const benchgen::Testcase tc =
      benchgen::generate(spec, scale > 0 ? scale : 1.0);

  std::ofstream lef(prefix + ".lef");
  lef << lefdef::writeLef(*tc.tech, *tc.lib);
  std::ofstream def(prefix + ".def");
  def << lefdef::writeDef(*tc.design);
  std::fprintf(stderr, "wrote %s.lef / %s.def (%zu instances, %zu nets)\n",
               prefix.c_str(), prefix.c_str(), tc.design->instances.size(),
               tc.design->nets.size());
  return 0;
}

int cmdAnalyze(int argc, char** argv) {
  if (argc < 4) return usage();

  core::OracleConfig cfg = core::withBcaConfig();
  std::string mode = "bca";
  std::size_t reportFailed = 0;
  const char* cacheIn = nullptr;
  const char* cacheOut = nullptr;
  ObsOutputs outputs;
  RobustOpts rob;
  bool badSpec = false;
  bool stream = false;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mode") == 0 && i + 1 < argc) {
      mode = argv[++i];
      if (mode == "legacy") cfg = core::legacyConfig();
      if (mode == "nobca") cfg = core::withoutBcaConfig();
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      cfg.numThreads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--stream") == 0) {
      stream = true;
    } else if (std::strcmp(argv[i], "--report-failed") == 0 && i + 1 < argc) {
      reportFailed = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--cache-in") == 0 && i + 1 < argc) {
      cacheIn = argv[++i];
    } else if (std::strcmp(argv[i], "--cache-out") == 0 && i + 1 < argc) {
      cacheOut = argv[++i];
    } else if (rob.parseFlag(argc, argv, i, badSpec)) {
      if (badSpec) return 2;
    } else if (!outputs.parseFlag(argc, argv, i)) {
      std::fprintf(stderr, "unknown analyze option '%s'\n", argv[i]);
      return usage();
    }
  }
  rob.apply(cfg);

  outputs.startTracing();
  LoadedDesign ld;
  core::IngestReport ingest;
  if (stream) {
    loadStreamed(ld, argv[2], argv[3], rob, cfg.numThreads, ingest);
  } else {
    load(ld, argv[2], argv[3], rob);
  }

  core::AccessCache cache;
  if (cacheIn != nullptr || cacheOut != nullptr) cfg.cache = &cache;
  if (cacheIn != nullptr) loadCacheFile(cache, cacheIn, ld, rob.keepGoing);

  // Sanity-check the placement before analyzing it.
  const auto placement = db::checkPlacement(ld.design);
  if (!placement.empty()) {
    std::fprintf(stderr, "placement warnings: %zu (first: %s)\n",
                 placement.size(),
                 placement.front().describe(ld.design).c_str());
  }

  // A read-only session rather than the batch facade, so the report can
  // carry session-level stats (class builds, cache hits) too.
  const core::OracleSession session(
      static_cast<const db::Design&>(ld.design), cfg);
  const core::OracleResult res = session.snapshot();
  const core::DirtyApStats dirty = core::countDirtyAps(ld.design, res);
  const core::FailedPinStats failed = core::countFailedPins(
      ld.design, res, reportFailed,
      cfg.legacyMode ? core::FailedPinCriterion::kAnyAp
                     : core::FailedPinCriterion::kChosenAp);

  std::fprintf(stderr, "\npin access report\n");
  std::fprintf(stderr, "  unique instances : %zu\n",
               res.unique.classes.size());
  std::fprintf(stderr, "  access points    : %zu (dirty: %zu)\n",
               dirty.totalAps, dirty.dirtyAps);
  std::fprintf(stderr, "  failed pins      : %zu / %zu\n", failed.failedPins,
               failed.totalPins);
  std::fprintf(stderr,
               "  runtime          : %.2f s wall (steps %.2f / %.2f / "
               "%.2f)\n",
               res.wallSeconds, res.step1Seconds, res.step2Seconds,
               res.step3Seconds);
  if (cfg.cache != nullptr) reportCache(cache);
  if (cacheOut != nullptr) saveCacheFile(cache, cacheOut, ld);
  for (const core::FailedPinDetail& d : failed.details) {
    const db::Instance& inst = ld.design.instances[d.instIdx];
    std::fprintf(stderr, "  FAILED %s (master %s) signal pin #%d\n",
                 inst.name.c_str(), inst.master->name.c_str(), d.sigPinPos);
    for (const drc::Violation& v : d.violations) {
      std::fprintf(stderr, "    %s\n", v.describe().c_str());
    }
  }

  obs::RunReport report("pao_cli analyze");
  report.section("design") =
      core::designSectionJson(ld.tech, ld.lib, ld.design);
  report.section("config") =
      core::analysisConfigJson(mode, cfg.numThreads, cfg.keepGoing);
  report.section("oracle") = core::oracleSectionJson(res, dirty, failed);
  report.section("session") = core::sessionSectionJson(session.stats());
  if (cfg.cache != nullptr) {
    report.section("cache") = core::cacheSectionJson(cache);
  }
  if (stream) {
    // "ingest" is a pao-report/2 section; only streamed runs carry it, so
    // the default analyze report stays v1 and byte-comparable with the
    // service report (tests/serve_smoke.sh).
    report.doc().set("schema", obs::Json(obs::kReportSchemaV2));
    report.section("ingest") = core::ingestSectionJson(ingest);
  }

  int code = failed.failedPins == 0 ? 0 : 1;
  code = finishDegraded(rob, res.degraded, report, code);
  if (outputs.profilePath != nullptr) {
#if PAO_OBS_ENABLED
    // Job spans go to the trace only when both artifacts were asked for:
    // per-node events would otherwise crowd the phase spans out of the
    // submitting thread's ring buffer.
    if (outputs.tracePath != nullptr) {
      obs::recordProfileTrace(session.lastGraphProfile());
    }
    if (!writeProfileReport(
            outputs.profilePath, session.lastGraphProfile(),
            core::analysisConfigJson(mode, cfg.numThreads, cfg.keepGoing)) &&
        code == 0) {
      code = 1;
    }
#else
    std::fprintf(stderr, "--profile-out requires a PAO_OBS=ON build\n");
    if (code == 0) code = 1;
#endif
  }
  if (!outputs.finish(report) && code == 0) code = 1;
  return code;
}

int cmdRoute(int argc, char** argv) {
  if (argc < 4) return usage();
  const char* outPath = nullptr;
  const char* cacheIn = nullptr;
  const char* cacheOut = nullptr;
  int numThreads = 1;
  ObsOutputs outputs;
  RobustOpts rob;
  bool badSpec = false;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      outPath = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      numThreads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--cache-in") == 0 && i + 1 < argc) {
      cacheIn = argv[++i];
    } else if (std::strcmp(argv[i], "--cache-out") == 0 && i + 1 < argc) {
      cacheOut = argv[++i];
    } else if (rob.parseFlag(argc, argv, i, badSpec)) {
      if (badSpec) return 2;
    } else if (!outputs.parseFlag(argc, argv, i)) {
      std::fprintf(stderr, "unknown route option '%s'\n", argv[i]);
      return usage();
    }
  }

  outputs.startTracing();
  LoadedDesign ld;
  load(ld, argv[2], argv[3], rob);

  core::OracleConfig oracleCfg = core::withBcaConfig();
  oracleCfg.numThreads = numThreads;
  rob.apply(oracleCfg);
  core::AccessCache cache;
  if (cacheIn != nullptr || cacheOut != nullptr) oracleCfg.cache = &cache;
  if (cacheIn != nullptr) loadCacheFile(cache, cacheIn, ld, rob.keepGoing);
  core::PinAccessOracle oracle(ld.design, oracleCfg);
  const core::OracleResult access = oracle.run();
  router::AccessSource source(ld.design, access,
                              router::AccessMode::kPattern);
  router::RouterConfig routerCfg;
  routerCfg.numThreads = numThreads;
  router::DetailedRouter rtr(ld.design, source, routerCfg);
  const router::RouteResult rr = rtr.run();

  std::fprintf(stderr, "\nrouting report\n");
  std::fprintf(stderr, "  nets             : %zu routed, %zu failed\n",
               rr.stats.routedNets, rr.stats.failedNets);
  std::fprintf(stderr, "  pin terms        : %zu unconnected\n",
               rr.stats.skippedTerms);
  std::fprintf(stderr, "  vias / wires     : %zu / %zu\n", rr.stats.viaCount,
               rr.stats.wireShapes);
  std::fprintf(stderr, "  DRC violations   : %zu total, %zu access-related\n",
               rr.violations.size(), rr.accessViolations);
  std::fprintf(stderr, "  runtime          : %.2f s\n", rr.stats.seconds);
  if (oracleCfg.cache != nullptr) reportCache(cache);
  if (cacheOut != nullptr) saveCacheFile(cache, cacheOut, ld);

  if (outPath != nullptr) {
    std::vector<lefdef::RoutedShape> routed;
    for (const router::RouteShape& s : rr.shapes) {
      const db::Layer& layer = ld.tech.layer(s.layer);
      if (s.isVia && layer.type == db::LayerType::kCut) {
        routed.push_back({s.net, s.layer, s.rect, true});
      } else if (!s.isVia && layer.type == db::LayerType::kRouting) {
        routed.push_back({s.net, s.layer, s.rect, false});
      }
    }
    std::ofstream out(outPath);
    out << lefdef::writeRoutedDef(ld.design, routed);
    std::fprintf(stderr, "  wrote %s\n", outPath);
  }

  obs::RunReport report("pao_cli route");
  report.section("design") =
      core::designSectionJson(ld.tech, ld.lib, ld.design);
  report.section("config").set("threads", obs::Json(numThreads));
  report.section("oracle") = core::oracleSectionJson(access);
  obs::Json& routerJ = report.section("router");
  routerJ.set("routedNets", obs::Json(rr.stats.routedNets));
  routerJ.set("failedNets", obs::Json(rr.stats.failedNets));
  routerJ.set("skippedTerms", obs::Json(rr.stats.skippedTerms));
  routerJ.set("viaCount", obs::Json(rr.stats.viaCount));
  routerJ.set("wireShapes", obs::Json(rr.stats.wireShapes));
  routerJ.set("rippedNets", obs::Json(rr.stats.rippedNets));
  routerJ.set("seconds", obs::Json(rr.stats.seconds));
  obs::Json& drcJ = report.section("drc");
  drcJ.set("violations", obs::Json(rr.violations.size()));
  drcJ.set("accessViolations", obs::Json(rr.accessViolations));
  if (oracleCfg.cache != nullptr) {
    report.section("cache") = core::cacheSectionJson(cache);
  }

  int code = finishDegraded(rob, access.degraded, report, 0);
  if (!outputs.finish(report) && code == 0) code = 1;
  return code;
}

// Measures the incremental OracleSession against fresh batch reruns over K
// random row-snapped instance moves, asserting chosen-pattern equivalence
// after every move. Exit 1 on any divergence.
int cmdBenchIncremental(int argc, char** argv) {
  if (argc < 4) return usage();
  int moves = 8;
  int numThreads = 1;
  std::uint64_t seed = 1;
  ObsOutputs outputs;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--moves") == 0 && i + 1 < argc) {
      moves = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      numThreads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (!outputs.parseFlag(argc, argv, i)) {
      std::fprintf(stderr, "unknown bench-incremental option '%s'\n",
                   argv[i]);
      return usage();
    }
  }

  outputs.startTracing();
  LoadedDesign ld;
  RobustOpts rob;  // bench is always strict
  load(ld, argv[2], argv[3], rob);
  if (ld.design.instances.empty()) {
    std::fprintf(stderr, "no instances to move\n");
    return 1;
  }

  core::AccessCache cache;
  core::OracleConfig cfg = core::withBcaConfig();
  cfg.numThreads = numThreads;
  cfg.cache = &cache;

  using Clock = std::chrono::steady_clock;
  const auto since = [](Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };

  const auto tInit = Clock::now();
  core::OracleSession session(ld.design, cfg);
  const double initialSeconds = since(tInit);

  std::uint64_t state = seed;
  const auto nextRand = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 17;  // the low LCG bits are weak; keep the upper ones
  };

  double sessionSeconds = 0;
  double freshSeconds = 0;
  std::size_t sessionDp = 0;
  std::size_t freshDp = 0;
  std::size_t dirtySum = 0;
  std::size_t clusterSum = 0;
  for (int m = 0; m < moves; ++m) {
    const int inst =
        static_cast<int>(nextRand() % ld.design.instances.size());
    geom::Point target = ld.design.instances[inst].origin;
    if (!ld.design.rows.empty()) {
      const db::Row& row =
          ld.design.rows[nextRand() % ld.design.rows.size()];
      const std::uint64_t sites =
          row.numSites > 0 ? static_cast<std::uint64_t>(row.numSites) : 1;
      target = geom::Point{
          row.origin.x +
              static_cast<geom::Coord>(nextRand() % sites) * row.siteWidth,
          row.origin.y};
    } else {
      const geom::Coord w = ld.design.instances[inst].master->width;
      target.x = ld.design.dieArea.xlo +
                 static_cast<geom::Coord>(nextRand() % 16) * w;
    }

    const std::size_t dpBefore = session.stats().clusterDpRuns;
    const auto tMove = Clock::now();
    session.moveInstance(inst, target);
    sessionSeconds += since(tMove);
    sessionDp += session.stats().clusterDpRuns - dpBefore;
    dirtySum += session.stats().lastDirtyClusters;
    clusterSum += session.stats().lastClusterCount;

    // Fresh batch run over the mutated design (read-only session = exactly
    // what PinAccessOracle::run does), sharing the same cache.
    const db::Design& cref = ld.design;
    const auto tFresh = Clock::now();
    const core::OracleSession fresh(cref, cfg);
    freshSeconds += since(tFresh);
    freshDp += fresh.stats().clusterDpRuns;

    if (fresh.chosenPattern() != session.chosenPattern()) {
      std::fprintf(stderr,
                   "MISMATCH after move %d: session chosenPattern differs "
                   "from a fresh batch run\n",
                   m);
      return 1;
    }
  }

  std::fprintf(stderr, "\nincremental bench (%d moves, seed %llu)\n", moves,
               static_cast<unsigned long long>(seed));
  std::fprintf(stderr, "  initial build    : %.3f s\n", initialSeconds);
  std::fprintf(stderr, "  session moves    : %.3f s total (%.4f s/move)\n",
               sessionSeconds, moves > 0 ? sessionSeconds / moves : 0.0);
  std::fprintf(stderr, "  fresh reruns     : %.3f s total (%.4f s/move)\n",
               freshSeconds, moves > 0 ? freshSeconds / moves : 0.0);
  std::fprintf(stderr, "  speedup          : %.1fx\n",
               sessionSeconds > 0 ? freshSeconds / sessionSeconds : 0.0);
  std::fprintf(stderr, "  cluster DP runs  : %zu session vs %zu fresh\n",
               sessionDp, freshDp);
  std::fprintf(stderr, "  dirty clusters   : %zu of %zu visited\n", dirtySum,
               clusterSum);
  reportCache(cache);
  std::fprintf(stderr, "  equivalence      : OK\n");

  obs::RunReport report("pao_cli bench-incremental");
  report.section("design") =
      core::designSectionJson(ld.tech, ld.lib, ld.design);
  obs::Json& config = report.section("config");
  config.set("moves", obs::Json(moves));
  config.set("seed", obs::Json(seed));
  config.set("threads", obs::Json(numThreads));
  obs::Json& bench = report.section("bench");
  bench.set("initialSeconds", obs::Json(initialSeconds));
  bench.set("sessionMoveSeconds", obs::Json(sessionSeconds));
  bench.set("freshRerunSeconds", obs::Json(freshSeconds));
  bench.set("sessionDpRuns", obs::Json(sessionDp));
  bench.set("freshDpRuns", obs::Json(freshDp));
  bench.set("dirtyClusters", obs::Json(dirtySum));
  bench.set("visitedClusters", obs::Json(clusterSum));
  report.section("session") = core::sessionSectionJson(session.stats());
  report.section("cache") = core::cacheSectionJson(cache);
  if (!outputs.finish(report)) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): first statement of main, no
  // other threads exist yet and nothing ever calls setenv.
  if (const char* spec = std::getenv("PAO_FAULTS")) {
    std::string error;
    if (!pao::util::FaultRegistry::instance().configure(spec, &error)) {
      std::fprintf(stderr, "PAO_FAULTS: %s\n", error.c_str());
      return 2;
    }
  }
  try {
    if (argc < 2) return usage();
    const std::string cmd = argv[1];
    if (cmd == "list") return cmdList();
    if (cmd == "gen") return cmdGen(argc, argv);
    if (cmd == "analyze") return cmdAnalyze(argc, argv);
    if (cmd == "route") return cmdRoute(argc, argv);
    if (cmd == "bench-incremental") return cmdBenchIncremental(argc, argv);
    return usage();
  } catch (const std::exception& e) {
    // Strict-mode contract: invalid input and injected faults surface as a
    // diagnostic and exit 3 — never an abort/unhandled-exception crash.
    std::fprintf(stderr, "fatal: %s\n", e.what());
    return 3;
  }
}
