// pao_cli — command-line front end for the library.
//
//   pao_cli gen <preset> <scale> <out-prefix>      synthesize a testcase to
//                                                  <out-prefix>.lef/.def
//   pao_cli analyze <lef> <def> [options]          run pin access analysis
//   pao_cli route <lef> <def> [options]            PAAF + detailed routing
//   pao_cli list                                   list testcase presets
//
// analyze options:
//   --mode bca|nobca|legacy    flow preset (default bca)
//   --threads N                Steps 1-2 worker threads (default 1, 0=auto)
//   --report-failed N          print up to N failed-pin diagnostics
// route options:
//   --out <file.def>           write the routed design as DEF
//   --threads N                worker threads for oracle, access planning
//                              and batch DRC (default 1, 0=auto); routed
//                              output is identical for any value
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "benchgen/testcase.hpp"
#include "db/legality.hpp"
#include "lefdef/def_parser.hpp"
#include "lefdef/def_route_writer.hpp"
#include "lefdef/def_writer.hpp"
#include "lefdef/lef_parser.hpp"
#include "lefdef/lef_writer.hpp"
#include "pao/evaluate.hpp"
#include "router/router.hpp"

namespace {

using namespace pao;

int usage() {
  std::printf(
      "usage:\n"
      "  pao_cli gen <preset> <scale> <out-prefix>\n"
      "  pao_cli analyze <lef> <def> [--mode bca|nobca|legacy] [--threads N]"
      " [--report-failed N]\n"
      "  pao_cli route <lef> <def> [--out routed.def] [--threads N]\n"
      "  pao_cli list\n");
  return 2;
}

std::string slurp(const char* path) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(1);
  }
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

struct LoadedDesign {
  db::Tech tech;
  db::Library lib;
  db::Design design;
};

void load(LoadedDesign& ld, const char* lefPath, const char* defPath) {
  lefdef::parseLef(slurp(lefPath), ld.tech, ld.lib);
  ld.design.tech = &ld.tech;
  ld.design.lib = &ld.lib;
  lefdef::parseDef(slurp(defPath), ld.design);
  std::printf("loaded '%s': %zu layers, %zu masters, %zu instances, %zu "
              "nets\n",
              ld.design.name.c_str(), ld.tech.layers().size(),
              ld.lib.masters().size(), ld.design.instances.size(),
              ld.design.nets.size());
}

int cmdList() {
  std::printf("%-16s %10s %8s %10s %6s\n", "preset", "#cells", "#macros",
              "#nets", "node");
  int idx = 0;
  for (const benchgen::TestcaseSpec& s : benchgen::ispd18Suite()) {
    std::printf("%-2d %-13s %10zu %8d %10zu %6s\n", idx++, s.name.c_str(),
                s.numCells, s.numMacros, s.numNets,
                s.node == benchgen::Node::k45 ? "45nm" : "32nm");
  }
  const benchgen::TestcaseSpec aes = benchgen::aes14Spec();
  std::printf("%-2s %-13s %10zu %8d %10zu %6s\n", "a", aes.name.c_str(),
              aes.numCells, aes.numMacros, aes.numNets, "14nm");
  return 0;
}

int cmdGen(int argc, char** argv) {
  if (argc < 5) return usage();
  const std::string which = argv[2];
  const double scale = std::atof(argv[3]);
  const std::string prefix = argv[4];

  benchgen::TestcaseSpec spec;
  if (which == "a" || which == "aes14") {
    spec = benchgen::aes14Spec();
  } else {
    const int idx = std::atoi(which.c_str());
    const auto suite = benchgen::ispd18Suite();
    if (idx < 0 || idx >= static_cast<int>(suite.size())) return usage();
    spec = suite[idx];
  }
  const benchgen::Testcase tc =
      benchgen::generate(spec, scale > 0 ? scale : 1.0);

  std::ofstream lef(prefix + ".lef");
  lef << lefdef::writeLef(*tc.tech, *tc.lib);
  std::ofstream def(prefix + ".def");
  def << lefdef::writeDef(*tc.design);
  std::printf("wrote %s.lef / %s.def (%zu instances, %zu nets)\n",
              prefix.c_str(), prefix.c_str(), tc.design->instances.size(),
              tc.design->nets.size());
  return 0;
}

int cmdAnalyze(int argc, char** argv) {
  if (argc < 4) return usage();
  LoadedDesign ld;
  load(ld, argv[2], argv[3]);

  core::OracleConfig cfg = core::withBcaConfig();
  std::size_t reportFailed = 0;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mode") == 0 && i + 1 < argc) {
      const std::string mode = argv[++i];
      if (mode == "legacy") cfg = core::legacyConfig();
      if (mode == "nobca") cfg = core::withoutBcaConfig();
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      cfg.numThreads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--report-failed") == 0 && i + 1 < argc) {
      reportFailed = static_cast<std::size_t>(std::atoi(argv[++i]));
    }
  }

  // Sanity-check the placement before analyzing it.
  const auto placement = db::checkPlacement(ld.design);
  if (!placement.empty()) {
    std::printf("placement warnings: %zu (first: %s)\n", placement.size(),
                placement.front().describe(ld.design).c_str());
  }

  core::PinAccessOracle oracle(ld.design, cfg);
  const core::OracleResult res = oracle.run();
  const core::DirtyApStats dirty = core::countDirtyAps(ld.design, res);
  const core::FailedPinStats failed = core::countFailedPins(
      ld.design, res, reportFailed,
      cfg.legacyMode ? core::FailedPinCriterion::kAnyAp
                     : core::FailedPinCriterion::kChosenAp);

  std::printf("\npin access report\n");
  std::printf("  unique instances : %zu\n", res.unique.classes.size());
  std::printf("  access points    : %zu (dirty: %zu)\n", dirty.totalAps,
              dirty.dirtyAps);
  std::printf("  failed pins      : %zu / %zu\n", failed.failedPins,
              failed.totalPins);
  std::printf("  runtime          : %.2f s wall (steps %.2f / %.2f / %.2f)\n",
              res.wallSeconds, res.step1Seconds, res.step2Seconds,
              res.step3Seconds);
  for (const core::FailedPinDetail& d : failed.details) {
    const db::Instance& inst = ld.design.instances[d.instIdx];
    std::printf("  FAILED %s (master %s) signal pin #%d\n",
                inst.name.c_str(), inst.master->name.c_str(), d.sigPinPos);
    for (const drc::Violation& v : d.violations) {
      std::printf("    %s\n", v.describe().c_str());
    }
  }
  return failed.failedPins == 0 ? 0 : 1;
}

int cmdRoute(int argc, char** argv) {
  if (argc < 4) return usage();
  LoadedDesign ld;
  load(ld, argv[2], argv[3]);
  const char* outPath = nullptr;
  int numThreads = 1;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      outPath = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      numThreads = std::atoi(argv[++i]);
    }
  }

  core::OracleConfig oracleCfg = core::withBcaConfig();
  oracleCfg.numThreads = numThreads;
  core::PinAccessOracle oracle(ld.design, oracleCfg);
  const core::OracleResult access = oracle.run();
  router::AccessSource source(ld.design, access,
                              router::AccessMode::kPattern);
  router::RouterConfig routerCfg;
  routerCfg.numThreads = numThreads;
  router::DetailedRouter rtr(ld.design, source, routerCfg);
  const router::RouteResult rr = rtr.run();

  std::printf("\nrouting report\n");
  std::printf("  nets             : %zu routed, %zu failed\n",
              rr.stats.routedNets, rr.stats.failedNets);
  std::printf("  pin terms        : %zu unconnected\n",
              rr.stats.skippedTerms);
  std::printf("  vias / wires     : %zu / %zu\n", rr.stats.viaCount,
              rr.stats.wireShapes);
  std::printf("  DRC violations   : %zu total, %zu access-related\n",
              rr.violations.size(), rr.accessViolations);
  std::printf("  runtime          : %.2f s\n", rr.stats.seconds);

  if (outPath != nullptr) {
    std::vector<lefdef::RoutedShape> routed;
    for (const router::RouteShape& s : rr.shapes) {
      const db::Layer& layer = ld.tech.layer(s.layer);
      if (s.isVia && layer.type == db::LayerType::kCut) {
        routed.push_back({s.net, s.layer, s.rect, true});
      } else if (!s.isVia && layer.type == db::LayerType::kRouting) {
        routed.push_back({s.net, s.layer, s.rect, false});
      }
    }
    std::ofstream out(outPath);
    out << lefdef::writeRoutedDef(ld.design, routed);
    std::printf("  wrote %s\n", outPath);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "list") return cmdList();
  if (cmd == "gen") return cmdGen(argc, argv);
  if (cmd == "analyze") return cmdAnalyze(argc, argv);
  if (cmd == "route") return cmdRoute(argc, argv);
  return usage();
}
