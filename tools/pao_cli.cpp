// pao_cli — command-line front end for the library.
//
//   pao_cli gen <preset> <scale> <out-prefix>      synthesize a testcase to
//                                                  <out-prefix>.lef/.def
//   pao_cli analyze <lef> <def> [options]          run pin access analysis
//   pao_cli route <lef> <def> [options]            PAAF + detailed routing
//   pao_cli bench-incremental <lef> <def> [opts]   incremental-session bench
//   pao_cli list                                   list testcase presets
//
// analyze options:
//   --mode bca|nobca|legacy    flow preset (default bca)
//   --threads N                Steps 1-2 worker threads (default 1, 0=auto)
//   --report-failed N          print up to N failed-pin diagnostics
//   --cache-in <file>          preload the access cache (exit 1 on a
//                              fingerprint mismatch)
//   --cache-out <file>         save the access cache after the run
// route options:
//   --out <file.def>           write the routed design as DEF
//   --threads N                worker threads for oracle, access planning
//                              and batch DRC (default 1, 0=auto); routed
//                              output is identical for any value
//   --cache-in / --cache-out   as for analyze
// bench-incremental options:
//   --moves K                  number of random instance moves (default 8)
//   --threads N                worker threads (default 1, 0=auto)
//   --seed S                   RNG seed (default 1)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "benchgen/testcase.hpp"
#include "db/legality.hpp"
#include "lefdef/def_parser.hpp"
#include "lefdef/def_route_writer.hpp"
#include "lefdef/def_writer.hpp"
#include "lefdef/lef_parser.hpp"
#include "lefdef/lef_writer.hpp"
#include "pao/evaluate.hpp"
#include "pao/session.hpp"
#include "router/router.hpp"

namespace {

using namespace pao;

int usage() {
  std::printf(
      "usage:\n"
      "  pao_cli gen <preset> <scale> <out-prefix>\n"
      "  pao_cli analyze <lef> <def> [--mode bca|nobca|legacy] [--threads N]"
      " [--report-failed N] [--cache-in f] [--cache-out f]\n"
      "  pao_cli route <lef> <def> [--out routed.def] [--threads N]"
      " [--cache-in f] [--cache-out f]\n"
      "  pao_cli bench-incremental <lef> <def> [--moves K] [--threads N]"
      " [--seed S]\n"
      "  pao_cli list\n");
  return 2;
}

std::string slurp(const char* path) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(1);
  }
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

struct LoadedDesign {
  db::Tech tech;
  db::Library lib;
  db::Design design;
};

/// Preloads `cache` from `path`; exits with an error for rejected caches
/// (wrong fingerprint / unknown format) so a stale cache never goes unnoticed.
void loadCacheFile(core::AccessCache& cache, const char* path,
                   const LoadedDesign& ld) {
  std::string error;
  const std::size_t n = cache.load(slurp(path), ld.tech, ld.lib, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "cache '%s' rejected: %s\n", path, error.c_str());
    std::exit(1);
  }
  std::printf("cache: loaded %zu entries from %s\n", n, path);
}

void saveCacheFile(const core::AccessCache& cache, const char* path,
                   const LoadedDesign& ld) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path);
    std::exit(1);
  }
  out << cache.save(ld.tech, ld.lib);
  std::printf("cache: saved %zu entries to %s\n", cache.size(), path);
}

void reportCache(const core::AccessCache& cache) {
  std::printf("  access cache     : %zu entries, %zu hits, %zu misses\n",
              cache.size(), cache.hits(), cache.misses());
}

void load(LoadedDesign& ld, const char* lefPath, const char* defPath) {
  lefdef::parseLef(slurp(lefPath), ld.tech, ld.lib);
  ld.design.tech = &ld.tech;
  ld.design.lib = &ld.lib;
  lefdef::parseDef(slurp(defPath), ld.design);
  std::printf("loaded '%s': %zu layers, %zu masters, %zu instances, %zu "
              "nets\n",
              ld.design.name.c_str(), ld.tech.layers().size(),
              ld.lib.masters().size(), ld.design.instances.size(),
              ld.design.nets.size());
}

int cmdList() {
  std::printf("%-16s %10s %8s %10s %6s\n", "preset", "#cells", "#macros",
              "#nets", "node");
  int idx = 0;
  for (const benchgen::TestcaseSpec& s : benchgen::ispd18Suite()) {
    std::printf("%-2d %-13s %10zu %8d %10zu %6s\n", idx++, s.name.c_str(),
                s.numCells, s.numMacros, s.numNets,
                s.node == benchgen::Node::k45 ? "45nm" : "32nm");
  }
  const benchgen::TestcaseSpec aes = benchgen::aes14Spec();
  std::printf("%-2s %-13s %10zu %8d %10zu %6s\n", "a", aes.name.c_str(),
              aes.numCells, aes.numMacros, aes.numNets, "14nm");
  return 0;
}

int cmdGen(int argc, char** argv) {
  if (argc < 5) return usage();
  const std::string which = argv[2];
  const double scale = std::atof(argv[3]);
  const std::string prefix = argv[4];

  benchgen::TestcaseSpec spec;
  if (which == "a" || which == "aes14") {
    spec = benchgen::aes14Spec();
  } else {
    const int idx = std::atoi(which.c_str());
    const auto suite = benchgen::ispd18Suite();
    if (idx < 0 || idx >= static_cast<int>(suite.size())) return usage();
    spec = suite[idx];
  }
  const benchgen::Testcase tc =
      benchgen::generate(spec, scale > 0 ? scale : 1.0);

  std::ofstream lef(prefix + ".lef");
  lef << lefdef::writeLef(*tc.tech, *tc.lib);
  std::ofstream def(prefix + ".def");
  def << lefdef::writeDef(*tc.design);
  std::printf("wrote %s.lef / %s.def (%zu instances, %zu nets)\n",
              prefix.c_str(), prefix.c_str(), tc.design->instances.size(),
              tc.design->nets.size());
  return 0;
}

int cmdAnalyze(int argc, char** argv) {
  if (argc < 4) return usage();
  LoadedDesign ld;
  load(ld, argv[2], argv[3]);

  core::OracleConfig cfg = core::withBcaConfig();
  std::size_t reportFailed = 0;
  const char* cacheIn = nullptr;
  const char* cacheOut = nullptr;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mode") == 0 && i + 1 < argc) {
      const std::string mode = argv[++i];
      if (mode == "legacy") cfg = core::legacyConfig();
      if (mode == "nobca") cfg = core::withoutBcaConfig();
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      cfg.numThreads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--report-failed") == 0 && i + 1 < argc) {
      reportFailed = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--cache-in") == 0 && i + 1 < argc) {
      cacheIn = argv[++i];
    } else if (std::strcmp(argv[i], "--cache-out") == 0 && i + 1 < argc) {
      cacheOut = argv[++i];
    }
  }

  core::AccessCache cache;
  if (cacheIn != nullptr || cacheOut != nullptr) cfg.cache = &cache;
  if (cacheIn != nullptr) loadCacheFile(cache, cacheIn, ld);

  // Sanity-check the placement before analyzing it.
  const auto placement = db::checkPlacement(ld.design);
  if (!placement.empty()) {
    std::printf("placement warnings: %zu (first: %s)\n", placement.size(),
                placement.front().describe(ld.design).c_str());
  }

  core::PinAccessOracle oracle(ld.design, cfg);
  const core::OracleResult res = oracle.run();
  const core::DirtyApStats dirty = core::countDirtyAps(ld.design, res);
  const core::FailedPinStats failed = core::countFailedPins(
      ld.design, res, reportFailed,
      cfg.legacyMode ? core::FailedPinCriterion::kAnyAp
                     : core::FailedPinCriterion::kChosenAp);

  std::printf("\npin access report\n");
  std::printf("  unique instances : %zu\n", res.unique.classes.size());
  std::printf("  access points    : %zu (dirty: %zu)\n", dirty.totalAps,
              dirty.dirtyAps);
  std::printf("  failed pins      : %zu / %zu\n", failed.failedPins,
              failed.totalPins);
  std::printf("  runtime          : %.2f s wall (steps %.2f / %.2f / %.2f)\n",
              res.wallSeconds, res.step1Seconds, res.step2Seconds,
              res.step3Seconds);
  if (cfg.cache != nullptr) reportCache(cache);
  if (cacheOut != nullptr) saveCacheFile(cache, cacheOut, ld);
  for (const core::FailedPinDetail& d : failed.details) {
    const db::Instance& inst = ld.design.instances[d.instIdx];
    std::printf("  FAILED %s (master %s) signal pin #%d\n",
                inst.name.c_str(), inst.master->name.c_str(), d.sigPinPos);
    for (const drc::Violation& v : d.violations) {
      std::printf("    %s\n", v.describe().c_str());
    }
  }
  return failed.failedPins == 0 ? 0 : 1;
}

int cmdRoute(int argc, char** argv) {
  if (argc < 4) return usage();
  LoadedDesign ld;
  load(ld, argv[2], argv[3]);
  const char* outPath = nullptr;
  const char* cacheIn = nullptr;
  const char* cacheOut = nullptr;
  int numThreads = 1;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      outPath = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      numThreads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--cache-in") == 0 && i + 1 < argc) {
      cacheIn = argv[++i];
    } else if (std::strcmp(argv[i], "--cache-out") == 0 && i + 1 < argc) {
      cacheOut = argv[++i];
    }
  }

  core::OracleConfig oracleCfg = core::withBcaConfig();
  oracleCfg.numThreads = numThreads;
  core::AccessCache cache;
  if (cacheIn != nullptr || cacheOut != nullptr) oracleCfg.cache = &cache;
  if (cacheIn != nullptr) loadCacheFile(cache, cacheIn, ld);
  core::PinAccessOracle oracle(ld.design, oracleCfg);
  const core::OracleResult access = oracle.run();
  router::AccessSource source(ld.design, access,
                              router::AccessMode::kPattern);
  router::RouterConfig routerCfg;
  routerCfg.numThreads = numThreads;
  router::DetailedRouter rtr(ld.design, source, routerCfg);
  const router::RouteResult rr = rtr.run();

  std::printf("\nrouting report\n");
  std::printf("  nets             : %zu routed, %zu failed\n",
              rr.stats.routedNets, rr.stats.failedNets);
  std::printf("  pin terms        : %zu unconnected\n",
              rr.stats.skippedTerms);
  std::printf("  vias / wires     : %zu / %zu\n", rr.stats.viaCount,
              rr.stats.wireShapes);
  std::printf("  DRC violations   : %zu total, %zu access-related\n",
              rr.violations.size(), rr.accessViolations);
  std::printf("  runtime          : %.2f s\n", rr.stats.seconds);
  if (oracleCfg.cache != nullptr) reportCache(cache);
  if (cacheOut != nullptr) saveCacheFile(cache, cacheOut, ld);

  if (outPath != nullptr) {
    std::vector<lefdef::RoutedShape> routed;
    for (const router::RouteShape& s : rr.shapes) {
      const db::Layer& layer = ld.tech.layer(s.layer);
      if (s.isVia && layer.type == db::LayerType::kCut) {
        routed.push_back({s.net, s.layer, s.rect, true});
      } else if (!s.isVia && layer.type == db::LayerType::kRouting) {
        routed.push_back({s.net, s.layer, s.rect, false});
      }
    }
    std::ofstream out(outPath);
    out << lefdef::writeRoutedDef(ld.design, routed);
    std::printf("  wrote %s\n", outPath);
  }
  return 0;
}

// Measures the incremental OracleSession against fresh batch reruns over K
// random row-snapped instance moves, asserting chosen-pattern equivalence
// after every move. Exit 1 on any divergence.
int cmdBenchIncremental(int argc, char** argv) {
  if (argc < 4) return usage();
  LoadedDesign ld;
  load(ld, argv[2], argv[3]);
  int moves = 8;
  int numThreads = 1;
  std::uint64_t seed = 1;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--moves") == 0 && i + 1 < argc) {
      moves = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      numThreads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    }
  }
  if (ld.design.instances.empty()) {
    std::fprintf(stderr, "no instances to move\n");
    return 1;
  }

  core::AccessCache cache;
  core::OracleConfig cfg = core::withBcaConfig();
  cfg.numThreads = numThreads;
  cfg.cache = &cache;

  using Clock = std::chrono::steady_clock;
  const auto since = [](Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };

  const auto tInit = Clock::now();
  core::OracleSession session(ld.design, cfg);
  const double initialSeconds = since(tInit);

  std::uint64_t state = seed;
  const auto nextRand = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 17;  // the low LCG bits are weak; keep the upper ones
  };

  double sessionSeconds = 0;
  double freshSeconds = 0;
  std::size_t sessionDp = 0;
  std::size_t freshDp = 0;
  std::size_t dirtySum = 0;
  std::size_t clusterSum = 0;
  for (int m = 0; m < moves; ++m) {
    const int inst =
        static_cast<int>(nextRand() % ld.design.instances.size());
    geom::Point target = ld.design.instances[inst].origin;
    if (!ld.design.rows.empty()) {
      const db::Row& row =
          ld.design.rows[nextRand() % ld.design.rows.size()];
      const std::uint64_t sites =
          row.numSites > 0 ? static_cast<std::uint64_t>(row.numSites) : 1;
      target = geom::Point{
          row.origin.x +
              static_cast<geom::Coord>(nextRand() % sites) * row.siteWidth,
          row.origin.y};
    } else {
      const geom::Coord w = ld.design.instances[inst].master->width;
      target.x = ld.design.dieArea.xlo +
                 static_cast<geom::Coord>(nextRand() % 16) * w;
    }

    const std::size_t dpBefore = session.stats().clusterDpRuns;
    const auto tMove = Clock::now();
    session.moveInstance(inst, target);
    sessionSeconds += since(tMove);
    sessionDp += session.stats().clusterDpRuns - dpBefore;
    dirtySum += session.stats().lastDirtyClusters;
    clusterSum += session.stats().lastClusterCount;

    // Fresh batch run over the mutated design (read-only session = exactly
    // what PinAccessOracle::run does), sharing the same cache.
    const db::Design& cref = ld.design;
    const auto tFresh = Clock::now();
    const core::OracleSession fresh(cref, cfg);
    freshSeconds += since(tFresh);
    freshDp += fresh.stats().clusterDpRuns;

    if (fresh.chosenPattern() != session.chosenPattern()) {
      std::fprintf(stderr,
                   "MISMATCH after move %d: session chosenPattern differs "
                   "from a fresh batch run\n",
                   m);
      return 1;
    }
  }

  std::printf("\nincremental bench (%d moves, seed %llu)\n", moves,
              static_cast<unsigned long long>(seed));
  std::printf("  initial build    : %.3f s\n", initialSeconds);
  std::printf("  session moves    : %.3f s total (%.4f s/move)\n",
              sessionSeconds, moves > 0 ? sessionSeconds / moves : 0.0);
  std::printf("  fresh reruns     : %.3f s total (%.4f s/move)\n",
              freshSeconds, moves > 0 ? freshSeconds / moves : 0.0);
  std::printf("  speedup          : %.1fx\n",
              sessionSeconds > 0 ? freshSeconds / sessionSeconds : 0.0);
  std::printf("  cluster DP runs  : %zu session vs %zu fresh\n", sessionDp,
              freshDp);
  std::printf("  dirty clusters   : %zu of %zu visited\n", dirtySum,
              clusterSum);
  reportCache(cache);
  std::printf("  equivalence      : OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "list") return cmdList();
  if (cmd == "gen") return cmdGen(argc, argv);
  if (cmd == "analyze") return cmdAnalyze(argc, argv);
  if (cmd == "route") return cmdRoute(argc, argv);
  if (cmd == "bench-incremental") return cmdBenchIncremental(argc, argv);
  return usage();
}
