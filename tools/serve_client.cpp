// pao_client — line-oriented test client for pao_serve.
//
//   pao_client (--socket PATH | --port N) [options] [REQUEST...]
//
// Sends each REQUEST argument (one JSON document per argument) as one
// protocol line and prints the matching response line to stdout. With no
// REQUEST arguments, reads request lines from stdin. Connects with
// retries (--retry-ms, default 2000) so scripts can race daemon startup.
//
// options:
//   --extract PATH     print only this dotted path of each response
//                      (e.g. result.report), pretty-printed
//   --partial N        send only the first N bytes of the first request,
//                      no newline, then close — simulates a client killed
//                      mid-request (exit 0; no response is awaited)
//   --retry-ms M       total connect retry window in milliseconds
//
// exit codes: 0 all responses ok; 1 some response not ok or --extract
// path missing; 3 connect or I/O failure.
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: pao_client (--socket PATH | --port N)"
               " [--extract PATH] [--partial N] [--retry-ms M]"
               " [REQUEST...]\n");
  return 2;
}

// pao-lint: allow(executor-hygiene): client-side connect backoff sleeps on
// the main thread of a test tool; there is no executor involved.
void sleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

int connectWithRetry(const std::string& socketPath, int port, int retryMs) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(retryMs);
  while (true) {
    int fd = -1;
    int rc = -1;
    if (!socketPath.empty()) {
      fd = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
      if (fd >= 0) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (socketPath.size() >= sizeof(addr.sun_path)) {
          close(fd);
          return -1;
        }
        std::memcpy(addr.sun_path, socketPath.c_str(),
                    socketPath.size() + 1);
        rc = connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
      }
    } else {
      fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
      if (fd >= 0) {
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(static_cast<std::uint16_t>(port));
        rc = connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
      }
    }
    if (rc == 0) return fd;
    if (fd >= 0) close(fd);
    if (std::chrono::steady_clock::now() >= deadline) return -1;
    sleepMs(20);
  }
}

bool sendAll(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads one '\n'-terminated line (without the newline); false on EOF or
/// error before a full line arrived.
bool recvLine(int fd, std::string& buffer, std::string& line) {
  while (true) {
    const std::size_t nl = buffer.find('\n');
    if (nl != std::string::npos) {
      line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      return true;
    }
    char buf[4096];
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n > 0) {
      buffer.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
}

/// Walks `doc` along a dotted key path; nullptr when any hop is missing.
const pao::obs::Json* extractPath(const pao::obs::Json& doc,
                                  const std::string& path) {
  const pao::obs::Json* node = &doc;
  std::size_t start = 0;
  while (start <= path.size()) {
    const std::size_t dot = path.find('.', start);
    const std::string key = dot == std::string::npos
                                ? path.substr(start)
                                : path.substr(start, dot - start);
    if (!node->isObject()) return nullptr;
    node = node->find(key);
    if (node == nullptr) return nullptr;
    if (dot == std::string::npos) break;
    start = dot + 1;
  }
  return node;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socketPath;
  int port = -1;
  std::string extract;
  long long partial = -1;
  int retryMs = 2000;
  std::vector<std::string> requests;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
      socketPath = argv[++i];
    } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--extract") == 0 && i + 1 < argc) {
      extract = argv[++i];
    } else if (std::strcmp(argv[i], "--partial") == 0 && i + 1 < argc) {
      partial = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--retry-ms") == 0 && i + 1 < argc) {
      retryMs = std::atoi(argv[++i]);
    } else if (argv[i][0] == '-' && argv[i][1] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      return usage();
    } else {
      requests.push_back(argv[i]);
    }
  }
  if (socketPath.empty() == (port < 0)) return usage();
  if (requests.empty() && partial < 0) {
    std::string line;
    char buf[4096];
    while (std::fgets(buf, sizeof(buf), stdin) != nullptr) {
      line = buf;
      while (!line.empty() &&
             (line.back() == '\n' || line.back() == '\r')) {
        line.pop_back();
      }
      if (!line.empty()) requests.push_back(line);
    }
  }

  const int fd = connectWithRetry(socketPath, port, retryMs);
  if (fd < 0) {
    std::fprintf(stderr, "pao_client: cannot connect\n");
    return 3;
  }

  if (partial >= 0) {
    // Simulate a client dying mid-request: ship a prefix, never a newline.
    const std::string& req = requests.empty() ? std::string() : requests[0];
    const std::size_t n =
        std::min(static_cast<std::size_t>(partial), req.size());
    if (n > 0 && !sendAll(fd, req.substr(0, n))) {
      close(fd);
      return 3;
    }
    close(fd);
    return 0;
  }

  int exitCode = 0;
  std::string buffer;
  for (const std::string& req : requests) {
    if (!sendAll(fd, req + "\n")) {
      std::fprintf(stderr, "pao_client: send failed\n");
      close(fd);
      return 3;
    }
    std::string line;
    if (!recvLine(fd, buffer, line)) {
      std::fprintf(stderr, "pao_client: connection closed by server\n");
      close(fd);
      return 3;
    }
    std::string error;
    const auto doc = pao::obs::Json::parse(line, &error);
    if (!doc) {
      std::fprintf(stderr, "pao_client: malformed response: %s\n",
                   error.c_str());
      close(fd);
      return 3;
    }
    const pao::obs::Json* ok = doc->find("ok");
    if (ok == nullptr || !ok->isBool() || !ok->asBool()) exitCode = 1;
    if (extract.empty()) {
      std::printf("%s\n", line.c_str());
    } else {
      const pao::obs::Json* node = extractPath(*doc, extract);
      if (node == nullptr) {
        std::fprintf(stderr, "pao_client: no '%s' in response\n",
                     extract.c_str());
        exitCode = 1;
      } else {
        std::printf("%s\n", node->dump(1).c_str());
      }
    }
  }
  close(fd);
  return exitCode;
}
